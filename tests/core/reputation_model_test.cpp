// Tests for Proposition 3.
#include "core/reputation_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fairness_efficiency.h"

namespace coopnet::core {
namespace {

TEST(ReputationEquilibrium, ProportionalReputationsArePerfectlyFair) {
  const std::vector<double> caps = {8.0, 4.0, 2.0};
  const auto eq = reputation_equilibrium(proportional_reputations(caps), caps);
  EXPECT_NEAR(eq.fairness, 0.0, 1e-12);
  for (std::size_t i = 0; i < caps.size(); ++i) {
    EXPECT_NEAR(eq.download[i], caps[i], 1e-12);
  }
}

TEST(ReputationEquilibrium, DownloadRatesMatchClosedForm) {
  const std::vector<double> r = {1.0, 2.0, 3.0};
  const std::vector<double> u = {6.0, 6.0, 6.0};
  const auto eq = reputation_equilibrium(r, u);
  // d_i = r_i * 18 / 6 = 3 r_i.
  EXPECT_NEAR(eq.download[0], 3.0, 1e-12);
  EXPECT_NEAR(eq.download[1], 6.0, 1e-12);
  EXPECT_NEAR(eq.download[2], 9.0, 1e-12);
}

TEST(ReputationEquilibrium, MisalignedReputationHurtsFairness) {
  const std::vector<double> caps = {8.0, 4.0, 2.0};
  // One user with moderate capacity but very low reputation (the paper's
  // worked example after Prop. 3).
  const std::vector<double> skewed = {8.0, 0.01, 2.0};
  const auto aligned =
      reputation_equilibrium(proportional_reputations(caps), caps);
  const auto misaligned = reputation_equilibrium(skewed, caps);
  EXPECT_GT(misaligned.fairness, aligned.fairness);
  EXPECT_GT(misaligned.efficiency, aligned.efficiency);
}

TEST(ReputationEquilibrium, EfficiencyConsistentWithEq2) {
  const std::vector<double> r = {1.0, 4.0};
  const std::vector<double> u = {5.0, 5.0};
  const auto eq = reputation_equilibrium(r, u);
  EXPECT_NEAR(eq.efficiency, efficiency(eq.download), 1e-12);
}

TEST(ReputationEquilibrium, FairnessFormulaMatchesEq3) {
  const std::vector<double> r = {1.0, 2.0};
  const std::vector<double> u = {3.0, 3.0};
  const auto eq = reputation_equilibrium(r, u);
  // d = {2, 4}; F = (|log(2/3)| + |log(4/3)|) / 2.
  const double expected =
      (std::fabs(std::log(2.0 / 3.0)) + std::fabs(std::log(4.0 / 3.0))) / 2.0;
  EXPECT_NEAR(eq.fairness, expected, 1e-12);
}

TEST(ReputationEquilibrium, RejectsBadInput) {
  EXPECT_THROW(reputation_equilibrium({}, {}), std::invalid_argument);
  EXPECT_THROW(reputation_equilibrium({1.0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(reputation_equilibrium({0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(reputation_equilibrium({1.0}, {0.0}), std::invalid_argument);
}

// Property sweep: total download rate always equals total capacity (the
// reputation scheme reallocates, never creates, bandwidth).
class ReputationConservation
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(ReputationConservation, TotalsPreserved) {
  const std::vector<double> caps = {10.0, 6.0, 4.0, 4.0};
  const auto eq = reputation_equilibrium(GetParam(), caps);
  double total = 0.0;
  for (double d : eq.download) total += d;
  EXPECT_NEAR(total, 24.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    ReputationVectors, ReputationConservation,
    ::testing::Values(std::vector<double>{1.0, 1.0, 1.0, 1.0},
                      std::vector<double>{10.0, 6.0, 4.0, 4.0},
                      std::vector<double>{0.1, 5.0, 2.0, 9.0},
                      std::vector<double>{100.0, 1.0, 1.0, 1.0}));

}  // namespace
}  // namespace coopnet::core
