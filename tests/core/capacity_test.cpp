#include "core/capacity.h"

#include <gtest/gtest.h>

#include <map>

namespace coopnet::core {
namespace {

TEST(CapacityDistribution, RejectsBadClasses) {
  EXPECT_THROW(CapacityDistribution({}), std::invalid_argument);
  EXPECT_THROW(CapacityDistribution({{0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(CapacityDistribution({{1.0, 0.5}}), std::invalid_argument);
  EXPECT_THROW(CapacityDistribution({{1.0, 0.7}, {2.0, 0.7}}),
               std::invalid_argument);
  EXPECT_THROW(CapacityDistribution({{1.0, -0.5}, {2.0, 1.5}}),
               std::invalid_argument);
}

TEST(CapacityDistribution, SampleHasExactClassCounts) {
  CapacityDistribution dist({{1.0, 0.5}, {2.0, 0.5}});
  util::Rng rng(1);
  const auto v = dist.sample(10, rng);
  ASSERT_EQ(v.size(), 10u);
  std::map<double, int> counts;
  for (double x : v) ++counts[x];
  EXPECT_EQ(counts[1.0], 5);
  EXPECT_EQ(counts[2.0], 5);
}

TEST(CapacityDistribution, LargestRemainderRounding) {
  // 3 users over {60%, 40%}: exact counts 1.8 and 1.2 -> 2 and 1.
  CapacityDistribution dist({{1.0, 0.6}, {2.0, 0.4}});
  util::Rng rng(2);
  const auto v = dist.sample(3, rng);
  std::map<double, int> counts;
  for (double x : v) ++counts[x];
  EXPECT_EQ(counts[1.0], 2);
  EXPECT_EQ(counts[2.0], 1);
}

TEST(CapacityDistribution, SampleZeroIsEmpty) {
  util::Rng rng(3);
  EXPECT_TRUE(CapacityDistribution::homogeneous(1.0).sample(0, rng).empty());
}

TEST(CapacityDistribution, DefaultMixIsValidAndSkewedLow) {
  const auto mix = CapacityDistribution::default_mix();
  util::Rng rng(4);
  const auto v = mix.sample(1000, rng);
  EXPECT_TRUE(satisfies_capacity_assumption(v));
  // More slow users than fast ones.
  int slow = 0, fast = 0;
  for (double x : v) {
    if (x <= 256.0 * 1024) ++slow;
    if (x >= 4096.0 * 1024) ++fast;
  }
  EXPECT_GT(slow, fast);
}

TEST(CapacityDistribution, HomogeneousSampleAllEqual) {
  util::Rng rng(5);
  const auto v = CapacityDistribution::homogeneous(7.0).sample(20, rng);
  for (double x : v) EXPECT_EQ(x, 7.0);
}

TEST(SortedDescending, Sorts) {
  const auto v = sorted_descending({1.0, 3.0, 2.0});
  EXPECT_EQ(v, (std::vector<double>{3.0, 2.0, 1.0}));
}

TEST(CapacityAssumption, HoldsForBalancedVectors) {
  EXPECT_TRUE(satisfies_capacity_assumption({3.0, 2.0, 2.0}));
}

TEST(CapacityAssumption, FailsWhenOneUserDominates) {
  // U_1 = 10 > 2 + 3 = sum of the rest.
  EXPECT_FALSE(satisfies_capacity_assumption({10.0, 3.0, 2.0}));
}

TEST(CapacityAssumption, FailsOnNonPositiveCapacity) {
  EXPECT_FALSE(satisfies_capacity_assumption({1.0, 0.0}));
  EXPECT_FALSE(satisfies_capacity_assumption({1.0, -1.0}));
}

TEST(TotalCapacity, Sums) {
  EXPECT_EQ(total_capacity({1.0, 2.0, 3.5}), 6.5);
  EXPECT_EQ(total_capacity({}), 0.0);
}

}  // namespace
}  // namespace coopnet::core
