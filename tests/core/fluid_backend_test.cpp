// Property tests of the fluid backend's RK4 integrator (DESIGN §12):
// observed convergence order ~= 4 under step halving, exact population
// conservation (arrivals - departures == net change to 1e-9), and bitwise
// determinism across repeated runs. The cross-validation against the
// event simulator lives in fluid_crossval_test.cpp; this file pins the
// integrator itself.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/fluid_model.h"

namespace coopnet::core {
namespace {

// A smooth scenario for the order measurement: constant-rate arrivals
// against a large waiting pool (the min(nominal, A/dt) closure never
// engages), a pre-warmed active population (no t = 0 kink), churn and
// linger on (every flow term exercised), and a horizon short enough that
// nothing depletes. On this regime the right-hand side is C-infinity
// along the trajectory, so classic RK4 must show its textbook order.
FluidSpec smooth_spec() {
  FluidSpec spec;
  spec.algorithm = Algorithm::kBitTorrent;
  spec.classes = {
      {128.0 * 1024, 4000.0, true},
      {1024.0 * 1024, 2000.0, true},
      {4.0 * 1024 * 1024, 1000.0, true},
      {512.0 * 1024, 500.0, false},  // free-riders
  };
  spec.file_bytes = 32.0 * 1024 * 1024;
  spec.seeder_rate = 4.0 * 1024 * 1024;
  spec.arrivals = FluidArrivals::kConstantRate;
  spec.arrival_rate = 5.0;
  spec.initial_fraction = 0.3;
  spec.churn_rate = 1.0 / 500.0;
  spec.rejoin_probability = 0.9;
  spec.mean_downtime = 30.0;
  spec.loss_rate = 0.05;
  spec.linger_time = 20.0;
  spec.horizon = 48.0;
  return spec;
}

// Representative scenario grid for the conservation / determinism sweeps.
std::vector<FluidSpec> scenario_grid() {
  std::vector<FluidSpec> specs;
  for (Algorithm algo : kAllAlgorithms) {
    for (bool churn : {false, true}) {
      FluidSpec spec;
      spec.algorithm = algo;
      spec.classes = {
          {128.0 * 1024, 300.0, true},   {256.0 * 1024, 250.0, true},
          {512.0 * 1024, 200.0, true},   {1024.0 * 1024, 150.0, true},
          {4.0 * 1024 * 1024, 80.0, true},
          {512.0 * 1024, 20.0, false},
      };
      spec.file_bytes = 8.0 * 1024 * 1024;
      spec.horizon = 600.0;
      spec.linger_time = 15.0;
      if (churn) {
        spec.churn_rate = 1.0 / 500.0;
        spec.rejoin_probability = 0.9;
        spec.mean_downtime = 30.0;
        spec.loss_rate = 0.05;
      }
      // The step an automatically-derived spec would get: resolves the
      // fast class's stage transport instead of riding the 2/dt cap.
      spec.dt = fluid_stable_dt(spec);
      specs.push_back(spec);
    }
  }
  return specs;
}

double spec_population(const FluidSpec& spec) {
  double n = 0.0;
  for (const auto& c : spec.classes) n += c.count;
  return n;
}

// || state difference || over the scalar outputs that summarize the full
// state vector (populations in every compartment plus the accumulators).
double report_distance(const FluidReport& a, const FluidReport& b) {
  double d = 0.0;
  d = std::max(d, std::abs(a.completed - b.completed));
  d = std::max(d, std::abs(a.leechers_final - b.leechers_final));
  d = std::max(d, std::abs(a.seeders_final - b.seeders_final));
  d = std::max(d, std::abs(a.offline_final - b.offline_final));
  d = std::max(d, std::abs(a.churned_lost - b.churned_lost));
  return d;
}

TEST(FluidRk4, StepHalvingShowsFourthOrderConvergence) {
  FluidSpec spec = smooth_spec();
  // Reference solution at a step fine enough that its own error is
  // negligible next to the coarse-step errors being measured.
  spec.dt = 1.0 / 128.0;
  const FluidReport reference = fluid_run(spec);

  spec.dt = 0.5;
  const double err_h = report_distance(fluid_run(spec), reference);
  spec.dt = 0.25;
  const double err_h2 = report_distance(fluid_run(spec), reference);
  spec.dt = 0.125;
  const double err_h4 = report_distance(fluid_run(spec), reference);

  ASSERT_GT(err_h, 0.0);
  ASSERT_GT(err_h2, 0.0);
  ASSERT_GT(err_h4, 0.0);
  const double order_a = std::log2(err_h / err_h2);
  const double order_b = std::log2(err_h2 / err_h4);
  // Observed order ~= 4. The window is generous on the high side: the
  // leading error term can partially cancel at one step pair, inflating
  // the measured order; dropping well below 4 is what would indicate a
  // first-order kink (clamp/min engaged) polluting the trajectory.
  EXPECT_GT(order_a, 3.4) << "err(h)=" << err_h << " err(h/2)=" << err_h2;
  EXPECT_LT(order_a, 5.5);
  EXPECT_GT(order_b, 3.4) << "err(h/2)=" << err_h2 << " err(h/4)=" << err_h4;
  EXPECT_LT(order_b, 5.5);
}

TEST(FluidRk4, ConservesPopulationToOneNano) {
  for (const FluidSpec& spec : scenario_grid()) {
    const FluidReport report = fluid_run(spec);
    const double population = spec_population(spec);
    // arrivals - departures == net population change, i.e. every peer is
    // in exactly one compartment: waiting, active, offline, completed, or
    // lost. The flows are symmetric by construction, so the residual is
    // pure floating-point rounding -- far below the 1e-9 contract.
    EXPECT_LE(report.conservation_residual, 1e-9 * population)
        << to_string(spec.algorithm) << " churn=" << (spec.churn_rate > 0);
    // Compartment sanity: conservation is exact (flows are symmetric),
    // but individual compartments may ripple slightly past their bounds
    // at the Erlang transport front -- a discretization artifact bounded
    // well below one peer in a thousand at the stable step.
    const double ripple = 1e-5 * population;
    EXPECT_GE(report.completed, -ripple);
    EXPECT_LE(report.completed, population + ripple);
    EXPECT_GE(report.arrived, -ripple);
    EXPECT_LE(report.arrived, population + ripple);
    EXPECT_GE(report.leechers_final, -ripple);
    EXPECT_GE(report.seeders_final, -ripple);
    EXPECT_GE(report.offline_final, -ripple);
    EXPECT_GE(report.churned_lost, -ripple);
  }
}

TEST(FluidRk4, RepeatedRunsAreBitwiseIdentical) {
  for (const FluidSpec& spec : scenario_grid()) {
    const FluidReport a = fluid_run(spec);
    const FluidReport b = fluid_run(spec);
    // Bitwise, not approximate: the fluid backend is a pure function of
    // its spec (fixed iteration order, no threads, no global state), so
    // every double must match to the last bit.
    const auto bits = [](double v) {
      std::uint64_t u = 0;
      std::memcpy(&u, &v, sizeof(u));
      return u;
    };
    EXPECT_EQ(bits(a.completed), bits(b.completed));
    EXPECT_EQ(bits(a.mean_completion_time), bits(b.mean_completion_time));
    EXPECT_EQ(bits(a.leechers_final), bits(b.leechers_final));
    EXPECT_EQ(bits(a.goodput_bytes), bits(b.goodput_bytes));
    EXPECT_EQ(bits(a.conservation_residual), bits(b.conservation_residual));
    ASSERT_EQ(a.completion_curve.size(), b.completion_curve.size());
    for (std::size_t i = 0; i < a.completion_curve.size(); ++i) {
      ASSERT_EQ(bits(a.completion_curve[i].value),
                bits(b.completion_curve[i].value));
      ASSERT_EQ(bits(a.completion_curve[i].time),
                bits(b.completion_curve[i].time));
    }
  }
}

TEST(FluidRk4, ReciprocityDrainsAtSeederPaceOnly) {
  // Degenerate tit-for-tat: no peer can make the first move, so nobody
  // ever uploads and the swarm drains through the seeder alone, in
  // lockstep, finishing around N * file / (eta * u_S). The event
  // simulator behaves the same way (the cross-validation grid pins the
  // agreement quantitatively); this test pins the three qualitative
  // regimes of the fluid side.
  FluidSpec spec;
  spec.algorithm = Algorithm::kReciprocity;
  spec.classes = {
      {128.0 * 1024, 300.0, true},   {256.0 * 1024, 250.0, true},
      {512.0 * 1024, 200.0, true},   {1024.0 * 1024, 150.0, true},
      {4.0 * 1024 * 1024, 80.0, true},
      {512.0 * 1024, 20.0, false},
  };
  spec.file_bytes = 8.0 * 1024 * 1024;  // N*F/u_S ~ 2000 s at N = 1000
  spec.dt = fluid_stable_dt(spec);

  // Horizon far short of the drain time: the Erlang chain keeps the
  // lockstep tight enough that essentially nobody finishes early (a
  // fractional sub-peer sliver of the left tail may, so the mean can be
  // finite -- what matters is that the completed mass is negligible).
  spec.horizon = 600.0;
  FluidReport report = fluid_run(spec);
  EXPECT_LT(report.completed, 0.01 * spec_population(spec));

  // Horizon past the drain: everyone finishes, at the seeder's pace.
  spec.horizon = 4000.0;
  report = fluid_run(spec);
  EXPECT_GT(report.completed, 0.99 * spec_population(spec));
  EXPECT_GT(report.mean_completion_time, 1700.0);
  EXPECT_LT(report.mean_completion_time, 2400.0);

  // Five times the population, same horizon: the drain needs ~10000 s,
  // so completions collapse back to (nearly) none -- the N = 5000
  // cross-validation cell, in miniature.
  for (auto& c : spec.classes) c.count *= 5.0;
  report = fluid_run(spec);
  EXPECT_LT(report.completed, 0.01 * spec_population(spec));
}

TEST(FluidRk4, CostIsIndependentOfPopulationScale) {
  // N enters only through class counts: the step count, curve sizes, and
  // everything structural must be identical at N = 10^3 and N = 10^6.
  // BitTorrent: reciprocal service keeps per-peer rates N-independent
  // (Reciprocity, all seeder-paced, would not finish at any N here).
  FluidSpec small;
  for (const FluidSpec& candidate : scenario_grid()) {
    if (candidate.algorithm == Algorithm::kBitTorrent &&
        candidate.churn_rate == 0.0) {
      small = candidate;
      break;
    }
  }
  FluidSpec big = small;
  for (auto& c : big.classes) c.count *= 1000.0;
  const FluidReport rs = fluid_run(small);
  const FluidReport rb = fluid_run(big);
  EXPECT_EQ(rs.steps, rb.steps);
  EXPECT_EQ(rs.completion_curve.size(), rb.completion_curve.size());
  // And the dynamics scale: with every class scaled by the same factor,
  // per-peer rates are nearly unchanged (only the fixed seeder share is
  // diluted), so the completed fraction stays in the same regime.
  EXPECT_GT(rb.completed / spec_population(big), 0.8);
}

TEST(FluidSpecValidation, RejectsInconsistentSettings) {
  const FluidSpec good = smooth_spec();
  EXPECT_NO_THROW(good.validate());

  FluidSpec bad = good;
  bad.classes.clear();
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = good;
  bad.classes[0].count = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = good;
  bad.file_bytes = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = good;
  bad.dt = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = good;
  bad.horizon = bad.dt / 2.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = good;
  bad.loss_rate = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = good;
  bad.rejoin_probability = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = good;
  bad.curve_points = 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = good;
  bad.arrival_rate = 0.0;  // constant-rate arrivals need a positive rate
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(FluidMechanismEfficiency, CoversEveryAlgorithm) {
  for (Algorithm algo : kAllAlgorithmsExtended) {
    const double eta = fluid_mechanism_efficiency(algo);
    EXPECT_GT(eta, 0.0) << to_string(algo);
    EXPECT_LE(eta, 1.0) << to_string(algo);
  }
}

}  // namespace
}  // namespace coopnet::core
