// Golden-pinned FluidReport serialization: the fluid backend is a pure
// deterministic function of its spec, so its JSON output -- every scalar
// and every curve sample, printed with %.17g -- is committed byte-for-byte
// under tests/golden/fluid_*.json. A diff here means the fluid model's
// numerics changed (new calibration, reordered flows, different stage
// count), which must be a deliberate, stated decision:
//
//   COOPNET_REGEN_GOLDEN=1 ./build/tests/test_fluid_golden
//
// The grid covers a mid-size churn cell and the N = 10^6 extrapolation
// cell the backend exists for (the event simulator cannot golden-check
// that scale; this file is what pins it instead).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fluid_model.h"
#include "exp/backend.h"
#include "metrics/json.h"
#include "sim/config.h"
#include "sim/faults.h"
#include "util/atomic_file.h"

#ifndef COOPNET_GOLDEN_DIR
#error "COOPNET_GOLDEN_DIR must point at tests/golden"
#endif

namespace coopnet::core {
namespace {

struct Cell {
  const char* name;  // golden file stem
  Algorithm algo;
  bool churn;
  std::size_t n;
};

const Cell kCells[] = {
    {"fluid_BitTorrent_churn_n1000", Algorithm::kBitTorrent, true, 1000},
    {"fluid_Reputation_clean_n5000", Algorithm::kReputation, false, 5000},
    {"fluid_BitTorrent_clean_n1000000", Algorithm::kBitTorrent, false,
     1000000},
};

// Same scenario family as the cross-validation grid (see
// fluid_crossval_test.cpp): 8 MB file, seed-independent fluid dynamics,
// moderate churn + 5% loss on the churn cells.
sim::SwarmConfig cell_config(const Cell& cell) {
  sim::SwarmConfig config;
  config.algorithm = cell.algo;
  config.n_peers = cell.n;
  config.file_bytes = 8LL * 1024 * 1024;
  config.piece_bytes = 128LL * 1024;
  config.graph.degree = 30;
  config.max_time = 4000.0;
  config.seed = 415;
  if (cell.churn) {
    config.faults = sim::moderate_churn();
    config.faults.transfer_loss_rate = 0.05;
  }
  return config;
}

std::string golden_path(const std::string& stem) {
  return std::string(COOPNET_GOLDEN_DIR) + "/" + stem + ".json";
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool regen() { return std::getenv("COOPNET_REGEN_GOLDEN") != nullptr; }

TEST(FluidGolden, ReportsMatchCommittedBytes) {
  for (const Cell& cell : kCells) {
    const FluidReport report = exp::run_fluid_scenario(cell_config(cell));
    const std::string json = metrics::to_json(report) + "\n";
    const std::string path = golden_path(cell.name);
    if (regen()) {
      ASSERT_NO_THROW(util::write_file_atomic(path, json)) << path;
      continue;
    }
    std::string golden;
    ASSERT_TRUE(read_file(path, golden))
        << "missing golden " << path
        << " (run with COOPNET_REGEN_GOLDEN=1 to create)";
    EXPECT_EQ(golden, json) << cell.name
                            << ": fluid numerics changed; regenerate "
                               "deliberately if intended";
  }
}

// %.17g is chosen because it round-trips IEEE doubles exactly: pulling a
// serialized scalar back with strtod must reproduce the in-memory value
// bit-for-bit, so the goldens pin the model, not a rounding of it.
TEST(FluidGolden, SerializedScalarsRoundTripExactly) {
  const FluidReport report =
      exp::run_fluid_scenario(cell_config(kCells[0]));
  const std::string json = metrics::to_json(report);
  const auto field = [&json](const std::string& name) {
    const std::string needle = "\"" + name + "\": ";
    const auto at = json.find(needle);
    EXPECT_NE(at, std::string::npos) << name;
    return std::strtod(json.c_str() + at + needle.size(), nullptr);
  };
  EXPECT_EQ(field("mean_completion_time"), report.mean_completion_time);
  EXPECT_EQ(field("completed"), report.completed);
  EXPECT_EQ(field("goodput_bytes"), report.goodput_bytes);
  EXPECT_EQ(field("conservation_residual"), report.conservation_residual);
  EXPECT_EQ(field("peak_leechers"), report.peak_leechers);
  // And serialization itself is a pure function of the report.
  EXPECT_EQ(json, metrics::to_json(report));
}

}  // namespace
}  // namespace coopnet::core
