// Tests for Lemma 3, Table II (including its example column), and Prop. 4.
#include "core/bootstrap.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace coopnet::core {
namespace {

BootstrapParams table2_example() {
  // N = 1000, n_S = 1, K = 5, pi_DR = 0.5, n_BT = 4, omega = 0.75,
  // n_FT = 500; evaluated at z(t) = 500.
  return BootstrapParams{};  // defaults encode exactly these values
}

TEST(TableII, ExampleColumnReproduced) {
  const auto p = table2_example();
  const std::int64_t z = 500;
  // The paper's example column, to the printed 0.1% precision.
  const std::map<Algorithm, double> expected = {
      {Algorithm::kReciprocity, 0.001}, {Algorithm::kTChain, 0.714},
      {Algorithm::kBitTorrent, 0.396},  {Algorithm::kFairTorrent, 0.714},
      {Algorithm::kReputation, 0.222},  {Algorithm::kAltruism, 0.918},
  };
  for (const auto& [algo, want] : expected) {
    // Match to the table's printed 0.1% granularity (FairTorrent's exact
    // value, 71.49%, sits on the rounding boundary).
    EXPECT_NEAR(bootstrap_probability(algo, p, z), want, 1.6e-3)
        << to_string(algo);
  }
}

TEST(TableII, ReciprocityOnlySeederBootstraps) {
  auto p = table2_example();
  for (std::int64_t z : {0, 100, 999}) {
    EXPECT_NEAR(bootstrap_probability(Algorithm::kReciprocity, p, z), 0.001,
                1e-12);
  }
  p.n_seeder = 10;
  EXPECT_NEAR(bootstrap_probability(Algorithm::kReciprocity, p, 0), 0.01,
              1e-12);
}

TEST(TableII, ProbabilitiesIncreaseWithBootstrappedUsers) {
  const auto p = table2_example();
  for (Algorithm a : kAllAlgorithms) {
    const double early = bootstrap_probability(a, p, 10);
    const double late = bootstrap_probability(a, p, 900);
    EXPECT_LE(early, late + 1e-12) << to_string(a);
  }
}

TEST(TableII, AllEntriesAreProbabilities) {
  const auto p = table2_example();
  for (Algorithm a : kAllAlgorithms) {
    for (std::int64_t z : {0, 1, 500, 1000}) {
      const double v = bootstrap_probability(a, p, z);
      ASSERT_GE(v, 0.0) << to_string(a);
      ASSERT_LE(v, 1.0) << to_string(a);
    }
  }
}

TEST(TableII, TChainWithPiDrZeroMatchesAltruism) {
  auto p = table2_example();
  p.pi_dr = 0.0;
  EXPECT_NEAR(bootstrap_probability(Algorithm::kTChain, p, 500),
              bootstrap_probability(Algorithm::kAltruism, p, 500), 1e-12);
}

TEST(TableII, TChainDegradesWithPiDr) {
  auto p = table2_example();
  double prev = 1.0;
  for (double pi : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    p.pi_dr = pi;
    const double v = bootstrap_probability(Algorithm::kTChain, p, 500);
    ASSERT_LE(v, prev + 1e-12);
    prev = v;
  }
}

TEST(TableII, FairTorrentDegradesWithOmega) {
  auto p = table2_example();
  double prev = 1.0;
  for (double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    p.omega = w;
    const double v = bootstrap_probability(Algorithm::kFairTorrent, p, 500);
    ASSERT_LE(v, prev + 1e-12);
    prev = v;
  }
}

TEST(Proposition4, AltruismIsFastestAtTheExampleOperatingPoint) {
  const auto p = table2_example();
  EXPECT_TRUE(altruism_beats_fairtorrent_condition(p));
  const double alt = bootstrap_probability(Algorithm::kAltruism, p, 500);
  for (Algorithm a : kAllAlgorithms) {
    EXPECT_GE(alt + 1e-12, bootstrap_probability(a, p, 500)) << to_string(a);
  }
}

TEST(Proposition4, OrderingAtExamplePoint) {
  const auto p = table2_example();
  const std::int64_t z = 500;
  const double tc = bootstrap_probability(Algorithm::kTChain, p, z);
  const double bt = bootstrap_probability(Algorithm::kBitTorrent, p, z);
  const double ft = bootstrap_probability(Algorithm::kFairTorrent, p, z);
  const double rep = bootstrap_probability(Algorithm::kReputation, p, z);
  const double rec = bootstrap_probability(Algorithm::kReciprocity, p, z);
  EXPECT_GT(tc, bt);   // T-Chain faster than BitTorrent (pi_DR <= 1/2)
  EXPECT_GT(ft, bt);   // FairTorrent faster than BitTorrent
  EXPECT_GT(bt, rep);  // reputation slower than BitTorrent
  EXPECT_GT(rep, rec); // reciprocity slowest
}

// Prop. 4 sweep: for K = 2 the T-Chain > BitTorrent ordering requires
// pi_DR <= 1/2 (the proposition's threshold); larger K relaxes it.
struct Prop4Param {
  std::int64_t K;
  double pi_dr;
  bool tchain_faster;
};

class Prop4Sweep : public ::testing::TestWithParam<Prop4Param> {};

TEST_P(Prop4Sweep, TChainVsBitTorrent) {
  const auto [K, pi_dr, tchain_faster] = GetParam();
  auto p = table2_example();
  p.pieces_per_slot = K;
  p.pi_dr = pi_dr;
  const double tc = bootstrap_probability(Algorithm::kTChain, p, 500);
  const double bt = bootstrap_probability(Algorithm::kBitTorrent, p, 500);
  if (tchain_faster) {
    EXPECT_GT(tc, bt);
  } else {
    EXPECT_LT(tc, bt);
  }
}

// Exact-formula thresholds: T-Chain beats BitTorrent iff roughly
// pi_DR < 1 - 1/K (Prop. 4's K = 2 condition pi_DR <= 1/2 is the
// boundary case and just barely fails under exact evaluation).
INSTANTIATE_TEST_SUITE_P(
    KAndPiDr, Prop4Sweep,
    ::testing::Values(Prop4Param{2, 0.25, true}, Prop4Param{2, 0.45, true},
                      Prop4Param{2, 1.0, false}, Prop4Param{5, 0.5, true},
                      Prop4Param{5, 0.75, true}, Prop4Param{1, 1.0, false}));

TEST(Lemma3, ConstantProbabilityMatchesGeometricMean) {
  // With P = 1 and constant p, E[T_B] is geometric: 1/p.
  const double p = 0.25;
  const double t =
      expected_bootstrap_time(1, [p](std::int64_t) { return p; });
  EXPECT_NEAR(t, 4.0, 1e-6);
}

TEST(Lemma3, MoreNewcomersTakeLonger) {
  auto p_fn = [](std::int64_t) { return 0.3; };
  const double t1 = expected_bootstrap_time(1, p_fn);
  const double t10 = expected_bootstrap_time(10, p_fn);
  const double t100 = expected_bootstrap_time(100, p_fn);
  EXPECT_LT(t1, t10);
  EXPECT_LT(t10, t100);
}

TEST(Lemma3, HigherProbabilityIsFaster) {
  const double slow =
      expected_bootstrap_time(50, [](std::int64_t) { return 0.1; });
  const double fast =
      expected_bootstrap_time(50, [](std::int64_t) { return 0.5; });
  EXPECT_LT(fast, slow);
}

TEST(Lemma3, CertainBootstrapTakesOneSlot) {
  const double t =
      expected_bootstrap_time(100, [](std::int64_t) { return 1.0; });
  EXPECT_NEAR(t, 1.0, 1e-12);
}

TEST(Lemma3, RejectsBadArguments) {
  EXPECT_THROW(expected_bootstrap_time(0, [](std::int64_t) { return 0.5; }),
               std::invalid_argument);
  EXPECT_THROW(
      expected_bootstrap_time(1, [](std::int64_t) { return 0.5; }, 0.0),
      std::invalid_argument);
}

TEST(DynamicBootstrap, AlgorithmOrderingMatchesTableII) {
  auto p = table2_example();
  const std::int64_t newcomers = 500;
  const std::int64_t z0 = 100;
  const double alt = expected_bootstrap_time_dynamic(Algorithm::kAltruism, p,
                                                     newcomers, z0);
  const double bt = expected_bootstrap_time_dynamic(Algorithm::kBitTorrent, p,
                                                    newcomers, z0);
  const double rep = expected_bootstrap_time_dynamic(Algorithm::kReputation,
                                                     p, newcomers, z0);
  EXPECT_LT(alt, bt);
  EXPECT_LT(bt, rep);
}

TEST(DynamicBootstrap, ReciprocityIsSlowestAndFinite) {
  const auto p = table2_example();
  // Seeder-only bootstrap: expected time is large but finite.
  const double rec = expected_bootstrap_time_dynamic(Algorithm::kReciprocity,
                                                     p, 10, 0);
  const double alt =
      expected_bootstrap_time_dynamic(Algorithm::kAltruism, p, 10, 0);
  EXPECT_GT(rec, alt);
  EXPECT_TRUE(std::isfinite(rec));
}

TEST(BootstrapTable, HasSixRowsInOrder) {
  const auto rows = bootstrap_table(table2_example(), 500);
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows.front().algorithm, Algorithm::kReciprocity);
  EXPECT_EQ(rows.back().algorithm, Algorithm::kAltruism);
}

TEST(BootstrapParams, Validation) {
  BootstrapParams p;
  p.n_users = 2;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = BootstrapParams{};
  p.pi_dr = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = BootstrapParams{};
  p.omega = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = BootstrapParams{};
  p.n_seeder = 2000;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = BootstrapParams{};
  p.pieces_per_slot = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = BootstrapParams{};
  p.n_ft = 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace coopnet::core
