// Tests for the EigenTrust implementation (paper ref. [4]).
#include "core/eigentrust.h"

#include <gtest/gtest.h>

#include <numeric>

namespace coopnet::core {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(EigenTrust, ValidatesInput) {
  EXPECT_THROW(eigentrust(0, {}, {0}), std::invalid_argument);
  EXPECT_THROW(eigentrust(3, {}, {}), std::invalid_argument);
  EXPECT_THROW(eigentrust(3, {}, {5}), std::out_of_range);
  EXPECT_THROW(eigentrust(3, {{0, 5, 1.0}}, {0}), std::out_of_range);
  EXPECT_THROW(eigentrust(3, {{0, 1, -1.0}}, {0}), std::invalid_argument);
  EigenTrustParams p;
  p.pretrust_weight = 0.0;
  EXPECT_THROW(eigentrust(3, {}, {0}, p), std::invalid_argument);
  p = {};
  p.max_iterations = 0;
  EXPECT_THROW(eigentrust(3, {}, {0}, p), std::invalid_argument);
}

TEST(EigenTrust, SumsToOne) {
  const auto t = eigentrust(
      4, {{0, 1, 3.0}, {1, 2, 2.0}, {2, 0, 1.0}, {3, 0, 5.0}}, {0});
  EXPECT_NEAR(sum(t), 1.0, 1e-9);
  for (double v : t) EXPECT_GE(v, 0.0);
}

TEST(EigenTrust, NoEdgesYieldsPretrustDistribution) {
  const auto t = eigentrust(4, {}, {1, 2});
  EXPECT_NEAR(t[0], 0.0, 1e-9);
  EXPECT_NEAR(t[1], 0.5, 1e-9);
  EXPECT_NEAR(t[2], 0.5, 1e-9);
  EXPECT_NEAR(t[3], 0.0, 1e-9);
}

TEST(EigenTrust, ServiceEarnsTrust) {
  // Peer 2 serves everyone; peer 3 serves no one. Both are credited by
  // nobody else... 2 must outrank 3.
  const auto t = eigentrust(
      4, {{0, 2, 4.0}, {1, 2, 4.0}, {2, 0, 1.0}}, {0});
  EXPECT_GT(t[2], t[3]);
  EXPECT_GT(t[2], t[1]);
}

TEST(EigenTrust, SelfEdgesIgnored) {
  const auto with_self = eigentrust(3, {{0, 0, 100.0}, {0, 1, 1.0}}, {0});
  const auto without = eigentrust(3, {{0, 1, 1.0}}, {0});
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(with_self[i], without[i], 1e-9);
  }
}

TEST(EigenTrust, SybilRingGainsLittleWithoutRealService) {
  // 10 honest peers exchanging among themselves + pre-trusted anchor; a
  // 5-peer sybil ring praising itself lavishly. The ring's total trust
  // must stay far below its population share.
  std::vector<TrustEdge> edges;
  const std::size_t honest = 10, sybil = 5, n = honest + sybil;
  for (std::size_t i = 0; i < honest; ++i) {
    for (std::size_t j = 0; j < honest; ++j) {
      if (i != j) edges.push_back({i, j, 1.0});
    }
  }
  for (std::size_t i = honest; i < n; ++i) {
    for (std::size_t j = honest; j < n; ++j) {
      if (i != j) edges.push_back({i, j, 1000.0});  // false praise
    }
  }
  const auto t = eigentrust(n, edges, {0});
  double ring = 0.0;
  for (std::size_t i = honest; i < n; ++i) ring += t[i];
  EXPECT_LT(ring, 0.10);  // vs 33% population share
}

TEST(EigenTrust, RealServiceToHonestPeersDoesEarnTrust) {
  // Contrast: a peer that genuinely serves honest peers gains trust even
  // though it is not pre-trusted.
  std::vector<TrustEdge> edges = {
      {0, 1, 1.0}, {1, 0, 1.0},      // honest pair
      {0, 2, 10.0}, {1, 2, 10.0},    // both receive a lot from peer 2
  };
  const auto t = eigentrust(3, edges, {0});
  EXPECT_GT(t[2], t[1]);
}

TEST(EigenTrust, RingDecaysGeometricallyFromTheAnchor) {
  // A directed ring with damping: trust restarts at the anchor every step
  // with probability a, so it decays geometrically with ring distance
  // (the damped-walk behaviour, not a uniform distribution).
  std::vector<TrustEdge> edges;
  const std::size_t n = 20;
  for (std::size_t i = 0; i < n; ++i) {
    edges.push_back({i, (i + 1) % n, 1.0});
  }
  EigenTrustParams p;
  p.max_iterations = 200;
  const auto t = eigentrust(n, edges, {0}, p);
  EXPECT_NEAR(sum(t), 1.0, 1e-9);
  // Strictly decreasing with distance from the anchor's successor.
  for (std::size_t i = 2; i < n; ++i) {
    EXPECT_LT(t[i], t[i - 1]) << i;
  }
  // Successive ratios approach 1 - a.
  EXPECT_NEAR(t[5] / t[4], 1.0 - p.pretrust_weight, 0.01);
}

}  // namespace
}  // namespace coopnet::core
