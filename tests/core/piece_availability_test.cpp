// Tests for eqs. 4-8, Proposition 2, and Corollary 2.
#include "core/piece_availability.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/logmath.h"

namespace coopnet::core {
namespace {

TEST(QNeeds, BoundaryCases) {
  EXPECT_EQ(q_needs(0, 0, 10), 0.0);   // j empty: nothing to need
  EXPECT_EQ(q_needs(10, 5, 10), 0.0);  // i complete: needs nothing
  EXPECT_EQ(q_needs(3, 7, 10), 1.0);   // m_i < m_j: pigeonhole guarantees need
}

TEST(QNeeds, ExactSmallCase) {
  // M = 3, m_i = 2, m_j = 1: P(j's piece within i's 2) = C(2,1)/C(3,1) = 2/3,
  // so q = 1/3.
  EXPECT_NEAR(q_needs(2, 1, 3), 1.0 / 3.0, 1e-12);
}

TEST(QNeeds, ExactMediumCase) {
  // M = 4, m_i = 2, m_j = 2: C(2,2)/C(4,2) = 1/6 -> q = 5/6.
  EXPECT_NEAR(q_needs(2, 2, 4), 5.0 / 6.0, 1e-12);
}

TEST(QNeeds, IsProbabilityAcrossFullGrid) {
  const std::int64_t M = 30;
  for (std::int64_t mi = 0; mi <= M; ++mi) {
    for (std::int64_t mj = 0; mj <= M; ++mj) {
      const double q = q_needs(mi, mj, M);
      ASSERT_GE(q, 0.0) << mi << "," << mj;
      ASSERT_LE(q, 1.0) << mi << "," << mj;
    }
  }
}

TEST(QNeeds, MonotoneDecreasingInOwnPieces) {
  // The more pieces i already holds, the less likely i needs one from j.
  const std::int64_t M = 64, mj = 16;
  double prev = 1.0;
  for (std::int64_t mi = mj; mi <= M; ++mi) {
    const double q = q_needs(mi, mj, M);
    ASSERT_LE(q, prev + 1e-12) << mi;
    prev = q;
  }
}

TEST(QNeeds, PaperScaleIsFinite) {
  const double q = q_needs(400, 380, 512);
  EXPECT_GE(q, 0.0);
  EXPECT_LE(q, 1.0);
}

TEST(QNeeds, OutOfRangeThrows) {
  EXPECT_THROW(q_needs(-1, 0, 10), std::invalid_argument);
  EXPECT_THROW(q_needs(0, 11, 10), std::invalid_argument);
  EXPECT_THROW(q_needs(0, 0, 0), std::invalid_argument);
}

TEST(PiDirectReciprocity, ZeroWhenEitherUserEmpty) {
  // Eq. 4's flash-crowd observation: with m_i or m_j = 0, no exchange.
  EXPECT_EQ(pi_direct_reciprocity(0, 5, 10), 0.0);
  EXPECT_EQ(pi_direct_reciprocity(5, 0, 10), 0.0);
}

TEST(PiDirectReciprocity, SymmetricInArguments) {
  EXPECT_NEAR(pi_direct_reciprocity(3, 7, 16), pi_direct_reciprocity(7, 3, 16),
              1e-12);
}

TEST(PiDirectReciprocity, MatchesPaperMinMaxForm) {
  // Eq. 4's closed form: 1 - C(M - min, max - min) / C(M, max).
  const std::int64_t M = 12, a = 4, b = 7;
  const double direct = pi_direct_reciprocity(a, b, M);
  const double closed =
      1.0 - std::exp(util::log_binomial(M - a, b - a) -
                     util::log_binomial(M, b));
  EXPECT_NEAR(direct, closed, 1e-10);
}

TEST(PieceCountDistribution, ValidatesInput) {
  EXPECT_THROW(PieceCountDistribution({0.5, 0.5}, 2), std::invalid_argument);
  EXPECT_THROW(PieceCountDistribution({0.5, 0.6, 0.0}, 2),
               std::invalid_argument);
  EXPECT_THROW(PieceCountDistribution({1.5, -0.5, 0.0}, 2),
               std::invalid_argument);
}

TEST(PieceCountDistribution, PointMass) {
  const auto d = PieceCountDistribution::point_mass(3, 8);
  EXPECT_EQ(d.p(3), 1.0);
  EXPECT_EQ(d.p(2), 0.0);
  EXPECT_EQ(d.mean(), 3.0);
}

TEST(PieceCountDistribution, UniformInterior) {
  const auto d = PieceCountDistribution::uniform_interior(5);
  EXPECT_EQ(d.p(0), 0.0);
  EXPECT_EQ(d.p(5), 0.0);
  for (std::int64_t k = 1; k <= 4; ++k) EXPECT_NEAR(d.p(k), 0.25, 1e-12);
  EXPECT_NEAR(d.mean(), 2.5, 1e-12);
}

TEST(PieceCountDistribution, FlashCrowdMassAtZero) {
  const auto d = PieceCountDistribution::flash_crowd(0.6, 2, 10);
  EXPECT_NEAR(d.p(0), 0.6, 1e-12);
  EXPECT_NEAR(d.p(1), 0.2, 1e-12);
  EXPECT_NEAR(d.p(2), 0.2, 1e-12);
  EXPECT_EQ(d.p(3), 0.0);
}

TEST(PieceCountDistribution, BinomialMeanIsPhiM) {
  const auto d = PieceCountDistribution::binomial(0.3, 40);
  EXPECT_NEAR(d.mean(), 12.0, 1e-9);
}

TEST(PieceCountDistribution, BinomialDegeneratePhi) {
  EXPECT_EQ(PieceCountDistribution::binomial(0.0, 10).p(0), 1.0);
  EXPECT_EQ(PieceCountDistribution::binomial(1.0, 10).p(10), 1.0);
}

TEST(PiTChain, AtLeastDirectReciprocity) {
  const auto dist = PieceCountDistribution::uniform_interior(32);
  for (std::int64_t mj : {1, 8, 16, 31}) {
    for (std::int64_t mi : {1, 8, 16, 31}) {
      EXPECT_GE(pi_tchain(mj, mi, dist, 50) + 1e-12,
                pi_direct_reciprocity(mj, mi, 32));
    }
  }
}

TEST(PiTChain, EqualsDirectPlusIndirect) {
  const auto dist = PieceCountDistribution::uniform_interior(32);
  const std::int64_t mj = 10, mi = 20, N = 40;
  EXPECT_NEAR(pi_tchain(mj, mi, dist, N),
              pi_direct_reciprocity(mj, mi, 32) +
                  pi_indirect_reciprocity(mj, mi, dist, N),
              1e-12);
}

TEST(PiBitTorrent, ReducesToDirectReciprocityAtAlphaZero) {
  EXPECT_NEAR(pi_bittorrent(10, 20, 32, 0.0),
              pi_direct_reciprocity(10, 20, 32), 1e-12);
}

TEST(PiBitTorrent, ReducesToAltruismAtAlphaOne) {
  EXPECT_NEAR(pi_bittorrent(10, 20, 32, 1.0), pi_altruism(10, 20, 32), 1e-12);
}

TEST(PiBitTorrent, MonotoneInAlpha) {
  double prev = 0.0;
  for (double a = 0.0; a <= 1.0; a += 0.1) {
    const double pi = pi_bittorrent(10, 25, 32, a);
    ASSERT_GE(pi + 1e-12, prev);
    prev = pi;
  }
}

TEST(Corollary2, AltruismDominatesEverything) {
  const std::int64_t M = 48;
  const auto dist = PieceCountDistribution::uniform_interior(M);
  for (std::int64_t mj : {1, 12, 24, 47}) {
    for (std::int64_t mi : {1, 12, 24, 47}) {
      const double pa = pi_altruism(mj, mi, M);
      EXPECT_GE(pa + 1e-12, pi_tchain(mj, mi, dist, 100));
      EXPECT_GE(pa + 1e-12, pi_bittorrent(mj, mi, M, 0.2));
      EXPECT_GE(pa + 1e-12, pi_direct_reciprocity(mj, mi, M));
    }
  }
}

TEST(Corollary2, TChainApproachesAltruismAsNGrows) {
  const std::int64_t M = 48;
  const auto dist = PieceCountDistribution::uniform_interior(M);
  // Uploader j holds more pieces than receiver i, so direct reciprocity is
  // uncertain and the indirect term (which grows with N) matters.
  const std::int64_t mj = 30, mi = 20;
  const double pa = pi_altruism(mj, mi, M);
  // N = 2: no third user exists, so T-Chain is pure direct reciprocity.
  const double gap_small = pa - pi_tchain(mj, mi, dist, 2);
  const double gap_large = pa - pi_tchain(mj, mi, dist, 2000);
  EXPECT_LT(gap_large, gap_small);
  EXPECT_NEAR(pi_tchain(mj, mi, dist, 2000), pa, 1e-6);
}

TEST(Proposition2, TChainBeatsBitTorrentBelowAlphaThreshold) {
  const std::int64_t M = 48, N = 60;
  const auto dist = PieceCountDistribution::uniform_interior(M);
  const std::int64_t mj = 20, mi = 30;
  const double threshold = alpha_bt_threshold(mj, dist, N);
  EXPECT_GT(threshold, 0.0);
  EXPECT_LE(threshold, 1.0);
  const double below = std::max(0.0, threshold - 0.05);
  EXPECT_GE(pi_tchain(mj, mi, dist, N) + 1e-9,
            pi_bittorrent(mj, mi, M, below));
}

TEST(Proposition2, BitTorrentBeatsTChainAboveThresholdForSmallN) {
  // With few users the redirect factor is small; a generous alpha_BT gives
  // BitTorrent the higher exchange probability.
  const std::int64_t M = 48, N = 3;
  const auto dist = PieceCountDistribution::point_mass(24, M);
  const std::int64_t mj = 24, mi = 24;
  const double threshold = alpha_bt_threshold(mj, dist, N);
  ASSERT_LT(threshold, 0.9);
  EXPECT_LE(pi_tchain(mj, mi, dist, N),
            pi_bittorrent(mj, mi, M, 0.95) + 1e-12);
}

TEST(ExpectedPi, AveragesOverDistribution) {
  const std::int64_t M = 16;
  const auto dist = PieceCountDistribution::point_mass(8, M);
  const double expected = expected_pi(
      dist, [M](std::int64_t mj, std::int64_t mi) {
        return pi_altruism(mj, mi, M);
      });
  EXPECT_NEAR(expected, pi_altruism(8, 8, M), 1e-12);
}

TEST(IndirectRedirect, GrowsWithN) {
  const auto dist = PieceCountDistribution::uniform_interior(32);
  const double small = indirect_redirect_probability(16, dist, 4);
  const double large = indirect_redirect_probability(16, dist, 400);
  EXPECT_LE(small, large + 1e-12);
}

TEST(IndirectRedirect, RejectsTinySwarm) {
  const auto dist = PieceCountDistribution::uniform_interior(32);
  EXPECT_THROW(indirect_redirect_probability(16, dist, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace coopnet::core
