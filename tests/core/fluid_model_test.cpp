// Tests for the mean-field fluid drain model.
#include "core/fluid_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace coopnet::core {
namespace {

FluidParams small_params() {
  FluidParams p;
  p.file_bytes = 1024.0;  // small file, fast integration
  p.seeder_rate = 0.0;
  p.dt = 0.01;
  p.max_time = 10000.0;
  return p;
}

TEST(FluidModel, ValidatesInput) {
  const FluidParams p = small_params();
  EXPECT_THROW(fluid_completion(Algorithm::kAltruism, {}, p),
               std::invalid_argument);
  EXPECT_THROW(fluid_completion(Algorithm::kAltruism, {{0.0, 5.0}}, p),
               std::invalid_argument);
  EXPECT_THROW(fluid_completion(Algorithm::kAltruism, {{1.0, -1.0}}, p),
               std::invalid_argument);
  FluidParams bad = p;
  bad.dt = 0.0;
  EXPECT_THROW(fluid_completion(Algorithm::kAltruism, {{1.0, 5.0}}, bad),
               std::invalid_argument);
}

TEST(FluidModel, TChainFinishTimeIsFileOverOwnCapacity) {
  const auto p = small_params();
  const std::vector<FluidClass> classes = {{32.0, 10.0}, {8.0, 10.0}};
  const auto result = fluid_completion(Algorithm::kTChain, classes, p);
  EXPECT_NEAR(result.finish_time[0], 1024.0 / 32.0, 0.5);
  EXPECT_NEAR(result.finish_time[1], 1024.0 / 8.0, 0.5);
}

TEST(FluidModel, AltruismEqualizesFinishTimes) {
  const auto p = small_params();
  const std::vector<FluidClass> classes = {{32.0, 10.0}, {8.0, 10.0}};
  const auto result = fluid_completion(Algorithm::kAltruism, classes, p);
  // Everyone downloads at roughly the population mean (~20; the
  // mean-of-others excludes one's own capacity, so the slow class sees a
  // slightly higher pool and finishes marginally first).
  EXPECT_NEAR(result.finish_time[0], result.finish_time[1], 2.5);
  EXPECT_NEAR(result.finish_time[0], 1024.0 / 20.0, 3.0);
  EXPECT_LE(result.finish_time[1], result.finish_time[0]);
}

TEST(FluidModel, ReciprocityWithoutSeederNeverFinishes) {
  const auto p = small_params();
  FluidParams capped = p;
  capped.max_time = 100.0;
  const auto result = fluid_completion(Algorithm::kReciprocity,
                                       {{32.0, 10.0}}, capped);
  EXPECT_TRUE(std::isinf(result.finish_time[0]));
  EXPECT_TRUE(std::isinf(result.mean_finish_time));
}

TEST(FluidModel, ReciprocityDrainsAtSeederRateOnly) {
  auto p = small_params();
  p.seeder_rate = 160.0;  // u_S / N = 16 per user
  const auto result =
      fluid_completion(Algorithm::kReciprocity, {{32.0, 10.0}}, p);
  EXPECT_NEAR(result.finish_time[0], 1024.0 / 16.0, 0.5);
}

TEST(FluidModel, BitTorrentInterpolatesWithAlpha) {
  auto p = small_params();
  const std::vector<FluidClass> classes = {{32.0, 10.0}, {8.0, 10.0}};
  p.model.alpha_bt = 0.0;
  const auto tft = fluid_completion(Algorithm::kBitTorrent, classes, p);
  p.model.alpha_bt = 1.0;
  const auto alt = fluid_completion(Algorithm::kBitTorrent, classes, p);
  // alpha = 0: pure per-class rates; alpha = 1: altruism-like sharing.
  EXPECT_NEAR(tft.finish_time[1], 1024.0 / 8.0, 1.0);
  EXPECT_LT(alt.finish_time[1], tft.finish_time[1]);
  EXPECT_GT(alt.finish_time[0], tft.finish_time[0]);
}

TEST(FluidModel, DepartureFeedbackSlowsAltruismTail) {
  // One fast class, one slow class under BitTorrent: the fast class
  // leaves first, after which the slow class loses the fast uploaders'
  // altruism share -- its finish is later than a static estimate.
  auto p = small_params();
  p.model.alpha_bt = 0.5;
  const std::vector<FluidClass> classes = {{64.0, 10.0}, {8.0, 10.0}};
  const auto result = fluid_completion(Algorithm::kBitTorrent, classes, p);
  ASSERT_LT(result.finish_time[0], result.finish_time[1]);
  // Static estimate with the full population present the whole time:
  const std::vector<FluidClass> active = classes;
  const double static_rate =
      fluid_download_rate(Algorithm::kBitTorrent, active, 1, p);
  EXPECT_GT(result.finish_time[1], 1024.0 / static_rate - 1.0);
}

TEST(FluidModel, CompletionCurveIsMonotoneAndEndsAtOne) {
  const auto p = small_params();
  const std::vector<FluidClass> classes = {
      {32.0, 5.0}, {16.0, 10.0}, {8.0, 20.0}};
  const auto result = fluid_completion(Algorithm::kFairTorrent, classes, p);
  double prev_t = -1.0, prev_f = -1.0;
  for (const auto& point : result.completion_curve) {
    EXPECT_GE(point.time, prev_t);
    EXPECT_GE(point.value, prev_f);
    prev_t = point.time;
    prev_f = point.value;
  }
  EXPECT_NEAR(result.completion_curve.back().value, 1.0, 1e-9);
}

TEST(FluidModel, MeanFinishTimeIsPopulationWeighted) {
  const auto p = small_params();
  const std::vector<FluidClass> classes = {{32.0, 30.0}, {8.0, 10.0}};
  const auto result = fluid_completion(Algorithm::kTChain, classes, p);
  const double expected =
      (result.finish_time[0] * 30.0 + result.finish_time[1] * 10.0) / 40.0;
  EXPECT_NEAR(result.mean_finish_time, expected, 1e-9);
}

TEST(FluidModel, AlgorithmEfficiencyOrderingMatchesFigure2) {
  auto p = small_params();
  p.seeder_rate = 16.0;
  const std::vector<FluidClass> classes = {
      {64.0, 5.0}, {32.0, 10.0}, {8.0, 25.0}};
  const double alt =
      fluid_completion(Algorithm::kAltruism, classes, p).mean_finish_time;
  const double bt =
      fluid_completion(Algorithm::kBitTorrent, classes, p).mean_finish_time;
  const double tc =
      fluid_completion(Algorithm::kTChain, classes, p).mean_finish_time;
  EXPECT_LT(alt, bt);
  EXPECT_LT(bt, tc);
}

TEST(FluidDownloadRate, OutOfRangeThrows) {
  const std::vector<FluidClass> active = {{8.0, 10.0}};
  EXPECT_THROW(
      fluid_download_rate(Algorithm::kAltruism, active, 1, FluidParams{}),
      std::out_of_range);
}

}  // namespace
}  // namespace coopnet::core
