// Swarm machinery tests driven through a scriptable stub strategy.
#include "sim/swarm.h"

#include <gtest/gtest.h>

#include <memory>

namespace coopnet::sim {
namespace {

/// A strategy with no autonomous behaviour; tests drive transfers manually.
class NullStrategy : public ExchangeStrategy {
 public:
  std::optional<UploadAction> next_upload(Swarm&, PeerId) override {
    return std::nullopt;
  }
};

/// Altruism-like behaviour with optional locked deliveries.
class ScriptedStrategy : public ExchangeStrategy {
 public:
  explicit ScriptedStrategy(bool locked) : locked_(locked) {}
  std::optional<UploadAction> next_upload(Swarm& swarm,
                                          PeerId uploader) override {
    ++decisions;
    auto needy = swarm.needy_neighbors(uploader);
    if (needy.empty()) return std::nullopt;
    const PeerId to = needy[swarm.rng().uniform_u64(needy.size())];
    const PieceId piece = swarm.pick_piece(uploader, to);
    if (piece == kNoPiece) return std::nullopt;
    return UploadAction{to, piece, locked_};
  }
  bool seeder_delivers_locked() const override { return locked_; }
  int decisions = 0;

 private:
  bool locked_;
};

SwarmConfig tiny_config() {
  SwarmConfig c;
  c.n_peers = 8;
  c.file_bytes = 4 * 64 * 1024;  // 4 pieces of 64 KB
  c.piece_bytes = 64 * 1024;
  c.capacities = core::CapacityDistribution::homogeneous(64.0 * 1024);
  c.seeder_capacity = 128.0 * 1024;
  c.graph.degree = 7;  // fully connected
  c.flash_crowd_window = 1.0;
  c.max_time = 500.0;
  c.seed = 3;
  return c;
}

TEST(Swarm, ConstructionBuildsPopulation) {
  Swarm s(tiny_config(), std::make_unique<NullStrategy>());
  EXPECT_EQ(s.leechers(), 8u);
  EXPECT_EQ(s.seeder_id(), 8u);
  const ConstPeer seeder = s.peer(s.seeder_id());
  EXPECT_TRUE(seeder.is_seeder());
  EXPECT_TRUE(seeder.pieces().complete());
  for (PeerId i = 0; i < 8; ++i) {
    EXPECT_EQ(s.peer(i).kind(), PeerKind::kCompliant);
    EXPECT_TRUE(s.peer(i).pieces().empty());
    EXPECT_EQ(s.peer(i).capacity(), 64.0 * 1024);
  }
  EXPECT_EQ(s.compliant_unfinished(), 8u);
}

TEST(Swarm, NullStrategyRunsOnlySeederUploads) {
  Swarm s(tiny_config(), std::make_unique<NullStrategy>());
  s.run();
  // The seeder alone serves everyone eventually (unlimited max_time).
  EXPECT_EQ(s.compliant_unfinished(), 0u);
  for (PeerId i = 0; i < 8; ++i) {
    EXPECT_TRUE(s.peer(i).finished());
    EXPECT_EQ(s.peer(i).uploaded_bytes(), 0);
  }
}

TEST(Swarm, ScriptedRunCompletesAndConservesBytes) {
  Swarm s(tiny_config(), std::make_unique<ScriptedStrategy>(false));
  s.run();
  EXPECT_EQ(s.compliant_unfinished(), 0u);
  Bytes uploaded = 0, raw = 0;
  for (const ConstPeer p : s.peers()) {
    uploaded += p.uploaded_bytes();
    raw += p.downloaded_raw_bytes();
  }
  // Eq. 1 as a trace invariant: every uploaded byte was either received or
  // discarded because the receiver had just departed.
  EXPECT_GE(uploaded, raw);
  EXPECT_LE(uploaded - raw, 8 * s.config().piece_bytes);
  // Every compliant peer ends with the full file.
  for (PeerId i = 0; i < 8; ++i) {
    EXPECT_EQ(s.peer(i).downloaded_usable_bytes(), s.config().file_bytes);
  }
}

TEST(Swarm, RunTwiceThrows) {
  Swarm s(tiny_config(), std::make_unique<NullStrategy>());
  s.run();
  EXPECT_THROW(s.run(), std::logic_error);
}

TEST(Swarm, NullStrategyThrows) {
  EXPECT_THROW(Swarm(tiny_config(), nullptr), std::invalid_argument);
}

TEST(Swarm, DeterministicUnderSameSeed) {
  auto run_once = [] {
    Swarm s(tiny_config(), std::make_unique<ScriptedStrategy>(false));
    s.run();
    std::vector<double> finish;
    for (PeerId i = 0; i < 8; ++i) finish.push_back(s.peer(i).finish_time());
    return finish;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Swarm, StartTransferPreconditions) {
  Swarm s(tiny_config(), std::make_unique<NullStrategy>());
  // Peers have not arrived yet: transfers must be refused.
  EXPECT_FALSE(s.start_transfer(s.seeder_id(), 0, 0, false));
}

TEST(Swarm, LockedDeliveriesStayUnusableUntilMadeUsable) {
  auto config = tiny_config();
  config.max_time = 50.0;
  Swarm s(config, std::make_unique<ScriptedStrategy>(true));
  s.run();
  // All payloads were delivered locked and nothing ever unlocked them.
  EXPECT_EQ(s.compliant_unfinished(), 8u);
  Bytes raw = 0, usable = 0;
  for (PeerId i = 0; i < 8; ++i) {
    raw += s.peer(i).downloaded_raw_bytes();
    usable += s.peer(i).downloaded_usable_bytes();
    EXPECT_FALSE(s.peer(i).finished());
  }
  EXPECT_GT(raw, 0);
  EXPECT_EQ(usable, 0);
}

TEST(Swarm, BootstrapCountsFirstDeliveryEvenWhenLocked) {
  auto config = tiny_config();
  config.max_time = 50.0;
  Swarm s(config, std::make_unique<ScriptedStrategy>(true));
  s.run();
  for (PeerId i = 0; i < 8; ++i) {
    EXPECT_TRUE(s.peer(i).bootstrapped()) << i;
  }
}

TEST(Swarm, MakeUsableUnlocksAndAttributesSource) {
  auto config = tiny_config();
  config.max_time = 30.0;
  Swarm s(config, std::make_unique<ScriptedStrategy>(true));
  s.run();
  // Find a locked piece and unlock it manually, attributing to a leecher.
  for (PeerId i = 0; i < 8; ++i) {
    Peer p = s.peer(i);
    if (p.locked().empty()) continue;
    PieceId piece = kNoPiece;
    for (PieceId q = 0; q < p.locked().size(); ++q) {
      if (p.locked().has(q)) {
        piece = q;
        break;
      }
    }
    ASSERT_NE(piece, kNoPiece);
    const Bytes before = p.downloaded_usable_bytes();
    s.make_usable(i, piece, /*source=*/1);
    EXPECT_TRUE(p.pieces().has(piece));
    EXPECT_FALSE(p.locked().has(piece));
    EXPECT_EQ(p.downloaded_usable_bytes(), before + config.piece_bytes);
    EXPECT_EQ(p.usable_from_leechers_bytes(), config.piece_bytes);
    // Unlocking again is a no-op.
    s.make_usable(i, piece, 1);
    EXPECT_EQ(p.downloaded_usable_bytes(), before + config.piece_bytes);
    return;
  }
  FAIL() << "no locked piece found to exercise make_usable";
}

TEST(Swarm, FreeRidersNeverUpload) {
  auto config = tiny_config();
  config.n_peers = 10;
  config.free_rider_fraction = 0.3;
  Swarm s(config, std::make_unique<ScriptedStrategy>(false));
  s.run();
  std::size_t free_riders = 0;
  for (PeerId i = 0; i < 10; ++i) {
    const ConstPeer p = s.peer(i);
    if (p.is_free_rider()) {
      ++free_riders;
      EXPECT_EQ(p.uploaded_bytes(), 0);
      EXPECT_GT(p.downloaded_usable_bytes(), 0);  // altruism still serves them
    }
  }
  EXPECT_EQ(free_riders, 3u);
}

TEST(Swarm, SeederBytesNotCountedAsLeecherUploads) {
  Swarm s(tiny_config(), std::make_unique<NullStrategy>());
  s.run();
  EXPECT_GT(s.total_uploaded_bytes(), 0);
  EXPECT_EQ(s.leecher_uploaded_bytes(), 0);
}

TEST(Swarm, ReputationLedgerTracksRealUploads) {
  Swarm s(tiny_config(), std::make_unique<ScriptedStrategy>(false));
  s.run();
  for (PeerId i = 0; i < 8; ++i) {
    EXPECT_NEAR(s.reputation(i),
                static_cast<double>(s.peer(i).uploaded_bytes()), 1e-6);
  }
  EXPECT_THROW(s.add_reported_upload(0, -5.0), std::invalid_argument);
}

TEST(Swarm, CollusionRingMembership) {
  auto config = tiny_config();
  config.n_peers = 10;
  config.free_rider_fraction = 0.3;
  config.attack.collusion = true;
  Swarm s(config, std::make_unique<NullStrategy>());
  std::vector<PeerId> ring;
  for (PeerId i = 0; i < 10; ++i) {
    if (s.peer(i).collusion_group() >= 0) ring.push_back(i);
  }
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_TRUE(s.same_collusion_ring(ring[0], ring[1]));
  for (PeerId i = 0; i < 10; ++i) {
    if (s.peer(i).collusion_group() < 0) {
      EXPECT_FALSE(s.same_collusion_ring(ring[0], i));
    }
  }
}

TEST(Swarm, FinishedPeersLeaveAndStopReceiving) {
  Swarm s(tiny_config(), std::make_unique<ScriptedStrategy>(false));
  s.run();
  for (PeerId i = 0; i < 8; ++i) {
    EXPECT_EQ(s.peer(i).state(), PeerState::kLeft);
    EXPECT_EQ(s.peer(i).downloaded_usable_bytes(), s.config().file_bytes);
  }
}

TEST(Swarm, MaxTimeCapsTheRun) {
  auto config = tiny_config();
  config.max_time = 0.5;  // nobody can finish a piece this fast
  Swarm s(config, std::make_unique<ScriptedStrategy>(false));
  s.run();
  EXPECT_LE(s.engine().now(), 0.5 + 1e-9);
  EXPECT_EQ(s.compliant_unfinished(), 8u);
}

}  // namespace
}  // namespace coopnet::sim
