// Batched-execution equivalence: a SimEngine with a prepare hook installed
// (set_parallel) must be observably identical to the plain sequential
// engine -- same pop order, clock, counters, stop points -- because
// commits always run one at a time in (time, seq) order and a stop pushes
// the unexecuted staged suffix back under its original sequence numbers.
// The suite drives both engines through randomized hinted tapes (barrier
// cuts, sweep hints, nested scheduling, mid-run stops) and pins the
// prepare hook's contract: hints arrive in commit order, tiny batches
// skip the hook, sweep batches never do.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "util/rng.h"

namespace coopnet::sim {
namespace {

// Deterministic hint for a label: a mix of plain subjects, no-hint,
// sweep, and barrier-tagged events, so the staging loop exercises every
// cut condition.
std::uint32_t hint_for(int label) {
  if (label % 11 == 0) return SimEngine::kHintSweep;
  if (label % 5 == 0) {
    return static_cast<std::uint32_t>(label) | SimEngine::kHintBarrier;
  }
  if (label % 3 == 0) return SimEngine::kNoHint;
  return static_cast<std::uint32_t>(label);
}

struct Op {
  enum class Kind {
    kSchedule,   // hinted, relative delay
    kNested,     // fires and schedules two more (hinted) events
    kStopper,    // fires and calls stop()
    kRun,        // run()
    kRunUntil,   // run_until(deadline)
    kResetStop,  // reset_stop()
  };
  Kind kind;
  double a = 0.0;
  double b = 0.0;
  int label = 0;
};

std::vector<Op> random_tape(std::uint64_t seed, std::size_t n_ops) {
  util::Rng rng(seed);
  std::vector<Op> tape;
  tape.reserve(n_ops);
  int label = 0;
  for (std::size_t i = 0; i < n_ops; ++i) {
    Op op;
    const std::uint64_t k = rng.uniform_u64(16);
    if (k < 7) {
      op.kind = Op::Kind::kSchedule;
      // Coarse quantization forces same-timestamp groups.
      op.a = static_cast<double>(rng.uniform_u64(6));
    } else if (k < 10) {
      op.kind = Op::Kind::kNested;
      op.a = static_cast<double>(rng.uniform_u64(6));
      op.b = static_cast<double>(rng.uniform_u64(4));
    } else if (k < 11) {
      op.kind = Op::Kind::kStopper;
      op.a = static_cast<double>(rng.uniform_u64(6));
    } else if (k < 13) {
      op.kind = Op::Kind::kRun;
    } else if (k < 15) {
      op.kind = Op::Kind::kRunUntil;
      op.a = static_cast<double>(rng.uniform_u64(20));
    } else {
      op.kind = Op::Kind::kResetStop;
    }
    op.label = label++;
    tape.push_back(op);
  }
  return tape;
}

// Replays the tape, recording fired-event labels, clocks, and counters.
// `batched` installs a no-op prepare hook with the given thresholds.
std::vector<std::string> replay(const std::vector<Op>& tape, bool batched,
                                std::size_t batch_cap = 4096,
                                std::size_t min_prepare = 0) {
  SimEngine engine;
  if (batched) {
    engine.set_parallel([](const std::uint32_t*, std::size_t) {}, batch_cap,
                        min_prepare);
  }
  std::vector<std::string> transcript;
  // In-event notes skip pending(): staged-but-uncommitted events are out
  // of the heap during a batch, so its mid-event value is the one
  // observable the two modes legitimately disagree on (see engine.h).
  // Between run calls the modes agree, so run-level notes include it.
  auto note = [&transcript, &engine](const std::string& what) {
    transcript.push_back(what + " now=" + std::to_string(engine.now()) +
                         " processed=" +
                         std::to_string(engine.events_processed()) +
                         (engine.stopped() ? " stopped" : ""));
  };
  auto note_idle = [&transcript, &engine, &note](const std::string& what) {
    note(what + " pending=" + std::to_string(engine.pending()));
  };
  for (const Op& op : tape) {
    const std::string tag = std::to_string(op.label);
    switch (op.kind) {
      case Op::Kind::kSchedule:
        engine.schedule_hinted(op.a, hint_for(op.label),
                               [&note, tag] { note("fire " + tag); });
        break;
      case Op::Kind::kNested: {
        const double inner = op.b;
        const int label = op.label;
        engine.schedule_hinted(
            op.a, hint_for(op.label), [&note, &engine, tag, inner, label] {
              note("fire " + tag);
              engine.schedule_hinted(inner, hint_for(label + 7), [&note, tag] {
                note("inner1 " + tag);
              });
              engine.schedule_hinted(inner + 1.0, hint_for(label + 13),
                                     [&note, tag] { note("inner2 " + tag); });
            });
        break;
      }
      case Op::Kind::kStopper:
        engine.schedule_hinted(op.a, hint_for(op.label),
                               [&note, &engine, tag] {
                                 note("stop " + tag);
                                 engine.stop();
                               });
        break;
      case Op::Kind::kRun:
        engine.run();
        note_idle("ran");
        break;
      case Op::Kind::kRunUntil:
        engine.run_until(engine.now() + op.a);
        note_idle("ran-until");
        break;
      case Op::Kind::kResetStop:
        engine.reset_stop();
        break;
    }
  }
  // Drain whatever is left so every scheduled event is accounted for.
  engine.reset_stop();
  engine.run();
  note_idle("drained");
  return transcript;
}

TEST(EngineBatch, RandomTapesMatchSequentialExactly) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto tape = random_tape(seed, 120);
    const auto sequential = replay(tape, /*batched=*/false);
    const auto batched = replay(tape, /*batched=*/true);
    ASSERT_EQ(sequential, batched) << "tape seed " << seed;
  }
}

TEST(EngineBatch, EveryBatchCapMatchesSequential) {
  // batch_cap = 1 stages one event at a time; larger caps exercise the
  // commit-time merge against freshly scheduled events.
  const auto tape = random_tape(/*seed=*/99, 150);
  const auto sequential = replay(tape, /*batched=*/false);
  for (std::size_t cap : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                          std::size_t{7}, std::size_t{64}}) {
    ASSERT_EQ(sequential, replay(tape, /*batched=*/true, cap))
        << "batch_cap " << cap;
  }
}

TEST(EngineBatch, PrepareSeesHintsInCommitOrder) {
  SimEngine engine;
  std::vector<std::vector<std::uint32_t>> batches;
  engine.set_parallel(
      [&batches](const std::uint32_t* hints, std::size_t count) {
        batches.emplace_back(hints, hints + count);
      },
      /*batch_cap=*/4096, /*min_prepare=*/0);
  std::vector<int> fired;
  for (int i = 0; i < 4; ++i) {
    engine.schedule_hinted(1.0, static_cast<std::uint32_t>(10 + i),
                           [&fired, i] { fired.push_back(i); });
  }
  // A barrier event at the same timestamp cuts the batch after itself.
  engine.schedule_hinted(1.0, 99u | SimEngine::kHintBarrier, [&fired] {
    fired.push_back(99);
  });
  engine.schedule_hinted(2.0, 50u, [&fired] { fired.push_back(50); });
  engine.run();

  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0],
            (std::vector<std::uint32_t>{10, 11, 12, 13,
                                        99u | SimEngine::kHintBarrier}));
  EXPECT_EQ(batches[1], (std::vector<std::uint32_t>{50}));
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 99, 50}));
}

TEST(EngineBatch, TinyBatchesSkipPrepareButSweepForcesIt) {
  SimEngine engine;
  std::size_t calls = 0;
  engine.set_parallel(
      [&calls](const std::uint32_t*, std::size_t) { ++calls; },
      /*batch_cap=*/4096, /*min_prepare=*/16);
  // Three events below the threshold: no prepare.
  for (int i = 0; i < 3; ++i) {
    engine.schedule_hinted(1.0, static_cast<std::uint32_t>(i), [] {});
  }
  engine.run();
  EXPECT_EQ(calls, 0u);
  // A sweep-hinted event prepares even in a batch of one.
  engine.schedule_hinted(1.0, SimEngine::kHintSweep, [] {});
  engine.run();
  EXPECT_EQ(calls, 1u);
}

TEST(EngineBatch, StopMidBatchRestoresTheUnexecutedSuffix) {
  // Five same-timestamp events staged as one batch; the second stops the
  // engine. The remaining three must replay later in the original order.
  SimEngine engine;
  engine.set_parallel([](const std::uint32_t*, std::size_t) {}, 4096, 0);
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_hinted(1.0, static_cast<std::uint32_t>(i),
                           [&fired, &engine, i] {
                             fired.push_back(i);
                             if (i == 1) engine.stop();
                           });
  }
  engine.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1}));
  EXPECT_EQ(engine.pending(), 3u);
  engine.reset_stop();
  engine.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
}

TEST(EngineBatch, EventLimitStopsAfterExactlyLimitEvents) {
  for (std::uint64_t limit = 1; limit <= 12; ++limit) {
    SimEngine engine;
    engine.set_parallel([](const std::uint32_t*, std::size_t) {}, 4096, 0);
    engine.set_event_limit(limit);
    std::vector<int> fired;
    for (int i = 0; i < 12; ++i) {
      engine.schedule_hinted(static_cast<double>(i % 3),
                             static_cast<std::uint32_t>(i),
                             [&fired, i] { fired.push_back(i); });
    }
    engine.run();
    EXPECT_EQ(engine.events_processed(), limit) << "limit " << limit;
    EXPECT_EQ(fired.size(), static_cast<std::size_t>(limit));
    EXPECT_TRUE(engine.event_limit_hit());
  }
}

TEST(EngineBatch, RunUntilNeverStagesPastTheDeadline) {
  SimEngine engine;
  std::size_t prepared_events = 0;
  engine.set_parallel(
      [&prepared_events](const std::uint32_t*, std::size_t count) {
        prepared_events += count;
      },
      4096, 0);
  std::vector<int> fired;
  for (int i = 0; i < 6; ++i) {
    engine.schedule_hinted(static_cast<double>(i), 0u,
                           [&fired, i] { fired.push_back(i); });
  }
  engine.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
  // Events beyond the deadline were never popped into a batch.
  EXPECT_EQ(prepared_events, 3u);
  EXPECT_DOUBLE_EQ(engine.now(), 2.5);
  EXPECT_EQ(engine.pending(), 3u);
  engine.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(EngineBatch, EmptyHookRestoresSequentialMode) {
  SimEngine engine;
  engine.set_parallel([](const std::uint32_t*, std::size_t) {}, 4096, 0);
  engine.set_parallel(nullptr);
  std::vector<int> fired;
  engine.schedule(1.0, [&fired] { fired.push_back(1); });
  engine.run();
  EXPECT_EQ(fired, (std::vector<int>{1}));
}

}  // namespace
}  // namespace coopnet::sim
