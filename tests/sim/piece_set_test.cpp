#include "sim/piece_set.h"

#include <gtest/gtest.h>

#include <vector>

namespace coopnet::sim {
namespace {

TEST(PieceSet, StartsEmpty) {
  PieceSet s(100);
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.complete());
  EXPECT_FALSE(s.has(0));
}

TEST(PieceSet, AddRemoveRoundTrip) {
  PieceSet s(70);
  EXPECT_TRUE(s.add(63));
  EXPECT_TRUE(s.add(64));  // crosses the word boundary
  EXPECT_FALSE(s.add(63));  // duplicate
  EXPECT_EQ(s.count(), 2u);
  EXPECT_TRUE(s.has(63));
  EXPECT_TRUE(s.has(64));
  EXPECT_TRUE(s.remove(63));
  EXPECT_FALSE(s.remove(63));
  EXPECT_EQ(s.count(), 1u);
}

TEST(PieceSet, FillSetsEverythingIncludingTail) {
  PieceSet s(67);  // non-multiple of 64 exercises the tail mask
  s.fill();
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.count(), 67u);
  for (PieceId p = 0; p < 67; ++p) EXPECT_TRUE(s.has(p));
}

TEST(PieceSet, ClearResets) {
  PieceSet s(10);
  s.fill();
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.has(5));
}

TEST(PieceSet, OutOfRangeThrows) {
  PieceSet s(10);
  EXPECT_THROW(s.has(10), std::out_of_range);
  EXPECT_THROW(s.add(10), std::out_of_range);
  EXPECT_THROW(s.remove(99), std::out_of_range);
}

TEST(PieceSet, CanOfferBasics) {
  PieceSet offer(10), excluded(10);
  EXPECT_FALSE(offer.can_offer(excluded));  // nothing to give
  offer.add(3);
  EXPECT_TRUE(offer.can_offer(excluded));
  excluded.add(3);
  EXPECT_FALSE(offer.can_offer(excluded));  // the only piece is excluded
  offer.add(7);
  EXPECT_TRUE(offer.can_offer(excluded));
}

TEST(PieceSet, CanOfferSizeMismatchThrows) {
  PieceSet a(10), b(11);
  EXPECT_THROW(a.can_offer(b), std::invalid_argument);
}

TEST(PieceSet, ForEachOfferableVisitsExactDifference) {
  PieceSet offer(130), excluded(130);
  for (PieceId p : {0u, 63u, 64u, 100u, 129u}) offer.add(p);
  excluded.add(63);
  excluded.add(100);
  excluded.add(5);  // not offered; irrelevant
  std::vector<PieceId> seen;
  const auto n = offer.for_each_offerable(
      excluded, [&](PieceId p) { seen.push_back(p); });
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(seen, (std::vector<PieceId>{0, 64, 129}));
}

TEST(PieceSet, ForEachOfferableSizeMismatchThrows) {
  PieceSet a(10), b(20);
  EXPECT_THROW(a.for_each_offerable(b, [](PieceId) {}),
               std::invalid_argument);
}

TEST(PieceSet, CompleteAfterAddingAll) {
  PieceSet s(3);
  s.add(0);
  s.add(1);
  EXPECT_FALSE(s.complete());
  s.add(2);
  EXPECT_TRUE(s.complete());
}

TEST(PieceSet, DefaultConstructedIsZeroSized) {
  PieceSet s;
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.complete());  // vacuously: count == size == 0
}

}  // namespace
}  // namespace coopnet::sim
