// Golden-equivalence suite: the optimized engine/swarm hot paths must be
// observably identical to the seed implementation. Each cell of the
// 6-mechanism x {no-faults, moderate churn} x N in {50, 200} matrix is
// pinned to a golden RunReport JSON (byte-identical) plus the streaming
// trace-sink JSONL output (line-by-line for N = 50, where the full trace
// is committed; line count + FNV-1a content hash for every cell).
//
// The goldens under tests/golden/ were generated from the pre-optimization
// seed engine (std::priority_queue<std::function> scheduler, linear
// needy-neighbor and rarest-first scans). Regenerate only when a change is
// *intended* to alter simulation behaviour:
//
//   COOPNET_REGEN_GOLDEN=1 ./build/tests/test_swarm_equivalence
//
// and say so in the commit message -- a diff here means the refactor
// changed the simulation, which is exactly what this suite exists to catch.
// The COOPNET_AUDIT CI leg runs this same suite with the invariant auditor
// on (config.audit_every = 1), proving the audited optimized engine still
// reproduces the seed baselines with zero invariant violations.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/json.h"
#include "metrics/report.h"
#include "metrics/run_metrics.h"
#include "metrics/trace_sink.h"
#include "sim/faults.h"
#include "sim/swarm.h"
#include "strategy/factory.h"
#include "util/atomic_file.h"

#ifndef COOPNET_GOLDEN_DIR
#error "COOPNET_GOLDEN_DIR must point at tests/golden"
#endif

namespace coopnet::sim {
namespace {

struct Cell {
  core::Algorithm algo;
  bool churn;
  std::size_t n;
};

// Full traces are committed for the N = 50 BitTorrent and T-Chain cells
// (the mechanisms with the richest transfer machinery), so a divergence
// there points at the exact first differing line. Every other cell pins
// its trace through the line count + FNV-1a hash in the meta file, which
// is the same byte-identity check without megabytes of golden text.
bool trace_committed(const Cell& cell) {
  return cell.n == 50 && (cell.algo == core::Algorithm::kBitTorrent ||
                          cell.algo == core::Algorithm::kTChain);
}

std::string cell_name(const Cell& cell) {
  std::string name = core::to_string(cell.algo);
  for (auto& c : name) {
    if (c == '-' || c == ' ') c = '_';
  }
  return name + (cell.churn ? "_churn" : "_clean") + "_n" +
         std::to_string(cell.n);
}

SwarmConfig cell_config(const Cell& cell) {
  auto config = SwarmConfig::small(cell.algo, /*seed=*/415);
  config.n_peers = cell.n;
  config.max_time = 4000.0;
  if (cell.churn) {
    // moderate_churn's ~500 s mean session against the small scenario's
    // multi-hundred-second downloads: a sizeable minority of peers churn.
    // The 5% loss rate layers the retry/backoff machinery on top, so the
    // fault cells pin the failure paths too, not just the happy path.
    config.faults = moderate_churn();
    config.faults.transfer_loss_rate = 0.05;
  }
  return config;
}

std::vector<Cell> all_cells() {
  std::vector<Cell> cells;
  for (core::Algorithm algo : core::kAllAlgorithms) {
    for (bool churn : {false, true}) {
      for (std::size_t n : {std::size_t{50}, std::size_t{200}}) {
        cells.push_back({algo, churn, n});
      }
    }
  }
  return cells;
}

struct CellResult {
  std::string report_json;
  std::vector<std::string> trace_lines;
};

CellResult run_cell(const Cell& cell, std::size_t threads = 1) {
  SwarmConfig config = cell_config(cell);
  config.threads = threads;
  Swarm swarm(config, strategy::make_strategy(config.algorithm));
  metrics::RunMetrics collector;
  collector.install(swarm);
  std::ostringstream trace;
  metrics::TraceSink sink(trace);
  sink.chain(&collector);
  swarm.set_observer(&sink);
  swarm.run();

  CellResult result;
  result.report_json = metrics::to_json(metrics::build_report(swarm, collector));
  std::istringstream lines(trace.str());
  std::string line;
  while (std::getline(lines, line)) result.trace_lines.push_back(line);
  return result;
}

// FNV-1a 64-bit over the newline-joined trace -- a content fingerprint for
// the cells whose full trace is not committed (no cryptographic claim; a
// refactor that perturbs any byte of any line will move it).
std::uint64_t fnv1a64(const std::vector<std::string>& lines) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](unsigned char c) {
    h ^= c;
    h *= 1099511628211ULL;
  };
  for (const auto& line : lines) {
    for (unsigned char c : line) mix(c);
    mix('\n');
  }
  return h;
}

std::string golden_path(const std::string& file) {
  return std::string(COOPNET_GOLDEN_DIR) + "/" + file;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

void write_file(const std::string& path, const std::string& contents) {
  // Atomic (temp + rename): an interrupted regen can't leave a torn
  // golden file that every later run would diff against.
  ASSERT_NO_THROW(util::write_file_atomic(path, contents))
      << "cannot write " << path;
}

std::string trace_meta(const CellResult& r) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"trace_lines\": %zu, \"trace_fnv64\": \"%016llx\"}\n",
                r.trace_lines.size(),
                static_cast<unsigned long long>(fnv1a64(r.trace_lines)));
  return buf;
}

bool regen_requested() {
  const char* env = std::getenv("COOPNET_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

class SwarmEquivalence : public ::testing::TestWithParam<Cell> {};

TEST_P(SwarmEquivalence, MatchesSeedGolden) {
  const Cell cell = GetParam();
  const CellResult result = run_cell(cell);
  const std::string base = cell_name(cell);

  if (regen_requested()) {
    write_file(golden_path(base + ".json"), result.report_json);
    write_file(golden_path(base + ".trace.meta"), trace_meta(result));
    if (trace_committed(cell)) {
      std::string joined;
      for (const auto& line : result.trace_lines) joined += line + "\n";
      write_file(golden_path(base + ".trace.jsonl"), joined);
    }
    GTEST_SKIP() << "regenerated golden " << base;
  }

  std::string golden_json;
  ASSERT_TRUE(read_file(golden_path(base + ".json"), golden_json))
      << "missing golden " << base
      << ".json (run with COOPNET_REGEN_GOLDEN=1 to create)";
  EXPECT_EQ(result.report_json, golden_json)
      << base << ": RunReport JSON diverged from the seed engine";

  std::string golden_meta;
  ASSERT_TRUE(read_file(golden_path(base + ".trace.meta"), golden_meta));
  EXPECT_EQ(trace_meta(result), golden_meta)
      << base << ": trace-sink stream diverged from the seed engine";

  if (trace_committed(cell)) {
    std::string golden_trace;
    ASSERT_TRUE(read_file(golden_path(base + ".trace.jsonl"), golden_trace));
    std::vector<std::string> golden_lines;
    std::istringstream lines(golden_trace);
    std::string line;
    while (std::getline(lines, line)) golden_lines.push_back(line);
    ASSERT_EQ(result.trace_lines.size(), golden_lines.size())
        << base << ": trace line count diverged";
    for (std::size_t i = 0; i < golden_lines.size(); ++i) {
      ASSERT_EQ(result.trace_lines[i], golden_lines[i])
          << base << ": trace line " << i + 1 << " diverged";
    }
  }

#if COOPNET_AUDIT
  // Audit builds re-verified the swarm's invariants at every event while
  // reproducing the golden bytes; surface the check count in the log.
  const SwarmConfig config = cell_config(cell);
  Swarm swarm(config, strategy::make_strategy(config.algorithm));
  ASSERT_NE(swarm.auditor(), nullptr);
#endif
}

// The --threads contract (DESIGN §11) says any thread count replays the
// sequential run byte-for-byte -- so the parallel mode must reproduce
// the *seed* goldens directly, not just match this build's sequential
// output. Report JSON byte-equal; trace pinned through the same
// line-count + FNV-1a meta fingerprint as the sequential check.
TEST_P(SwarmEquivalence, MatchesSeedGoldenUnderThreads) {
  const Cell cell = GetParam();
  if (regen_requested()) {
    GTEST_SKIP() << "goldens are regenerated by the sequential test";
  }
  std::string golden_json, golden_meta;
  const std::string base = cell_name(cell);
  ASSERT_TRUE(read_file(golden_path(base + ".json"), golden_json));
  ASSERT_TRUE(read_file(golden_path(base + ".trace.meta"), golden_meta));
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const CellResult result = run_cell(cell, threads);
    EXPECT_EQ(result.report_json, golden_json)
        << base << ": RunReport JSON diverged from the seed engine at "
        << "--threads " << threads;
    EXPECT_EQ(trace_meta(result), golden_meta)
        << base << ": trace-sink stream diverged from the seed engine at "
        << "--threads " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, SwarmEquivalence,
                         ::testing::ValuesIn(all_cells()),
                         [](const ::testing::TestParamInfo<Cell>& info) {
                           return cell_name(info.param);
                         });

}  // namespace
}  // namespace coopnet::sim
