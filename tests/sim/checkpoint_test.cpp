// The checkpoint container's integrity contract: a snapshot decodes only
// when every byte is exactly what encode_snapshot wrote. The adversarial
// sweeps below corrupt EVERY byte offset and truncate at EVERY length --
// a snapshot that has been bit-rotted, torn by a crashed write, or taken
// under a different configuration must be rejected up front (decode or
// restore's front-loaded validation), never half-applied to a swarm.
#include "sim/checkpoint.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/auditor.h"
#include "sim/swarm.h"
#include "strategy/factory.h"

namespace coopnet::sim {
namespace {

SwarmConfig tiny_config(std::uint64_t seed = 7) {
  // Small on purpose: the corruption sweep decodes the container once
  // per byte offset, so the snapshot should be a few KB, not MB.
  SwarmConfig config = SwarmConfig::small(core::Algorithm::kBitTorrent,
                                          seed);
  config.n_peers = 8;
  config.file_bytes = 512LL * 1024;
  return config;
}

/// Simulated end time of the cell (it finishes long before max_time).
double sim_duration(const SwarmConfig& config) {
  Swarm probe(config, strategy::make_strategy(config.algorithm));
  probe.run();
  return probe.engine().now();
}

/// Runs a fresh swarm to mid-cell and returns the saved sections.
std::vector<SnapshotSection> mid_cell_sections(const SwarmConfig& config) {
  Swarm swarm(config, strategy::make_strategy(config.algorithm));
  swarm.enable_checkpoints();
  swarm.start();
  swarm.advance_until(sim_duration(config) / 2.0);
  EXPECT_FALSE(swarm.finished()) << "cell ended before the snapshot point";
  return SwarmCheckpoint::save(swarm);
}

/// Runs a fresh swarm to mid-cell and returns its encoded snapshot.
std::string mid_cell_snapshot(const SwarmConfig& config) {
  return encode_snapshot(config, mid_cell_sections(config));
}

/// True when `bytes` is rejected end-to-end: either decode_snapshot or
/// SwarmCheckpoint::restore's front-loaded validation throws. Nothing
/// corrupt may survive both gates.
bool rejected(const SwarmConfig& config, const std::string& bytes) {
  try {
    const std::vector<SnapshotSection> sections =
        decode_snapshot(config, bytes);
    Swarm swarm(config, strategy::make_strategy(config.algorithm));
    swarm.enable_checkpoints();
    swarm.start_restored();
    SwarmCheckpoint::restore(swarm, sections);
  } catch (const CheckpointError&) {
    return true;
  }
  return false;
}

TEST(CheckpointContainer, DecodeRoundTripsEncode) {
  const SwarmConfig config = tiny_config();
  const std::vector<SnapshotSection> saved = mid_cell_sections(config);
  const std::string bytes = encode_snapshot(config, saved);

  const std::vector<SnapshotSection> decoded =
      decode_snapshot(config, bytes);
  ASSERT_EQ(decoded.size(), saved.size());
  for (std::size_t i = 0; i < saved.size(); ++i) {
    EXPECT_EQ(decoded[i].id, saved[i].id);
    EXPECT_EQ(decoded[i].payload, saved[i].payload)
        << "section id " << saved[i].id;
  }
  // Serialization is deterministic: the same state encodes to the same
  // bytes (this is what makes snapshots canonical across --threads).
  EXPECT_EQ(encode_snapshot(config, saved), bytes);
}

TEST(CheckpointContainer, RejectsCorruptionAtEveryByteOffset) {
  if (kAuditCompiledIn) {
    // The audit shadow-ledger section is optional at restore, so a flip
    // in ITS id field is survivable by design; the every-offset contract
    // is validated in the default (non-audit) build.
    GTEST_SKIP() << "audit builds carry an optional section";
  }
  const SwarmConfig config = tiny_config();
  const std::string bytes = mid_cell_snapshot(config);
  ASSERT_FALSE(rejected(config, bytes)) << "pristine snapshot must apply";

  for (std::size_t offset = 0; offset < bytes.size(); ++offset) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0xFF);
    EXPECT_TRUE(rejected(config, corrupt))
        << "corrupt byte at offset " << offset << " of " << bytes.size()
        << " was accepted";
  }
}

TEST(CheckpointContainer, RejectsTruncationAtEveryLength) {
  const SwarmConfig config = tiny_config();
  const std::string bytes = mid_cell_snapshot(config);

  for (std::size_t length = 0; length < bytes.size(); ++length) {
    EXPECT_TRUE(rejected(config, bytes.substr(0, length)))
        << "truncation to " << length << " of " << bytes.size()
        << " bytes was accepted";
  }
}

TEST(CheckpointContainer, RejectsASnapshotFromADifferentConfiguration) {
  const SwarmConfig config = tiny_config(/*seed=*/7);
  const std::string bytes = mid_cell_snapshot(config);

  // Any result-affecting field difference must be caught by the config
  // fingerprint before section parsing even starts.
  SwarmConfig other_seed = config;
  other_seed.seed = 8;
  EXPECT_THROW(decode_snapshot(other_seed, bytes), CheckpointError);

  SwarmConfig other_algo = config;
  other_algo.algorithm = core::Algorithm::kTChain;
  EXPECT_THROW(decode_snapshot(other_algo, bytes), CheckpointError);

  // --threads is explicitly excluded: a snapshot taken at K threads
  // restores under any other K (results are byte-identical either way).
  SwarmConfig other_threads = config;
  other_threads.threads = 4;
  EXPECT_NO_THROW(decode_snapshot(other_threads, bytes));
}

TEST(CheckpointContainer, RestoreRequiresEverySwarmSection) {
  const SwarmConfig config = tiny_config();
  const std::vector<SnapshotSection> sections = mid_cell_sections(config);

  for (std::size_t drop = 0; drop < sections.size(); ++drop) {
    if (sections[drop].id == kSectionAudit) continue;  // optional by design
    std::vector<SnapshotSection> partial;
    for (std::size_t i = 0; i < sections.size(); ++i) {
      if (i != drop) partial.push_back(sections[i]);
    }
    Swarm swarm(config, strategy::make_strategy(config.algorithm));
    swarm.enable_checkpoints();
    swarm.start_restored();
    EXPECT_THROW(SwarmCheckpoint::restore(swarm, partial), CheckpointError)
        << "restore accepted a snapshot missing section id "
        << sections[drop].id;
  }
}

}  // namespace
}  // namespace coopnet::sim
