// Tests for arrival processes, multiple seeders, and download-side
// back-pressure (the substrate knobs beyond the paper's flash crowd).
#include <gtest/gtest.h>

#include <memory>

#include "exp/runner.h"
#include "sim/swarm.h"
#include "strategy/factory.h"

namespace coopnet::sim {
namespace {

using core::Algorithm;

SwarmConfig base(std::uint64_t seed = 41) {
  auto config = SwarmConfig::small(Algorithm::kAltruism, seed);
  config.n_peers = 40;
  return config;
}

TEST(Arrivals, FlashCrowdWithinWindow) {
  auto config = base();
  config.arrivals = ArrivalProcess::kFlashCrowd;
  config.flash_crowd_window = 5.0;
  Swarm s(config, strategy::make_strategy(config.algorithm));
  for (PeerId i = 0; i < s.leechers(); ++i) {
    EXPECT_GE(s.peer(i).arrival_time(), 0.0);
    EXPECT_LE(s.peer(i).arrival_time(), 5.0);
  }
}

TEST(Arrivals, PoissonSpreadsBeyondFlashWindow) {
  auto config = base();
  config.arrivals = ArrivalProcess::kPoisson;
  config.arrival_rate = 0.5;  // one peer every ~2 s on average
  Swarm s(config, strategy::make_strategy(config.algorithm));
  double last = 0.0;
  for (PeerId i = 0; i < s.leechers(); ++i) {
    last = std::max(last, s.peer(i).arrival_time());
  }
  // 40 peers at rate 0.5/s: arrivals stretch over ~80 s on average.
  EXPECT_GT(last, 20.0);
}

TEST(Arrivals, StaggeredIsUniformlySpaced) {
  auto config = base();
  config.arrivals = ArrivalProcess::kStaggered;
  config.arrival_rate = 2.0;
  Swarm s(config, strategy::make_strategy(config.algorithm));
  std::vector<double> times;
  for (PeerId i = 0; i < s.leechers(); ++i) {
    times.push_back(s.peer(i).arrival_time());
  }
  std::sort(times.begin(), times.end());
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_NEAR(times[i] - times[i - 1], 0.5, 1e-9);
  }
}

TEST(Arrivals, SwarmCompletesUnderEveryProcess) {
  for (ArrivalProcess proc :
       {ArrivalProcess::kFlashCrowd, ArrivalProcess::kPoisson,
        ArrivalProcess::kStaggered}) {
    auto config = base();
    config.arrivals = proc;
    config.arrival_rate = 2.0;
    config.max_time = 2000.0;
    const auto report = exp::run_scenario(config);
    EXPECT_NEAR(report.completed_fraction, 1.0, 1e-9)
        << static_cast<int>(proc);
  }
}

TEST(Arrivals, StaggeredArrivalsEaseBootstrapContention) {
  // Under BitTorrent, a trickle of newcomers into an established swarm
  // bootstraps faster than a flash crowd of mutual strangers.
  auto flash = base();
  flash.algorithm = Algorithm::kBitTorrent;
  flash.max_time = 2000.0;
  auto staggered = flash;
  staggered.arrivals = ArrivalProcess::kStaggered;
  staggered.arrival_rate = 1.0;
  const auto flash_report = exp::run_scenario(flash);
  const auto staggered_report = exp::run_scenario(staggered);
  ASSERT_FALSE(flash_report.bootstrap_times.empty());
  ASSERT_FALSE(staggered_report.bootstrap_times.empty());
  EXPECT_LT(staggered_report.bootstrap_summary.median,
            flash_report.bootstrap_summary.median);
}

TEST(Seeders, MultipleSeedersAllServe) {
  auto config = base();
  config.seeder_count = 3;
  config.max_time = 2000.0;
  Swarm s(config, strategy::make_strategy(config.algorithm));
  EXPECT_EQ(s.seeder_count(), 3u);
  s.run();
  for (std::size_t k = 0; k < 3; ++k) {
    const ConstPeer seeder = s.peer(static_cast<PeerId>(s.leechers() + k));
    EXPECT_TRUE(seeder.is_seeder());
    EXPECT_GT(seeder.uploaded_bytes(), 0) << k;
  }
  EXPECT_EQ(s.compliant_unfinished(), 0u);
}

TEST(Seeders, LeechersKnowEverySeeder) {
  auto config = base();
  config.seeder_count = 2;
  Swarm s(config, strategy::make_strategy(config.algorithm));
  for (PeerId i = 0; i < s.leechers(); ++i) {
    const auto nb = s.peer(i).neighbors();
    for (std::size_t k = 0; k < 2; ++k) {
      const auto seeder = static_cast<PeerId>(s.leechers() + k);
      EXPECT_EQ(std::count(nb.begin(), nb.end(), seeder), 1) << i;
    }
  }
}

TEST(Seeders, MoreSeedersBootstrapReciprocityFaster) {
  // Under pure reciprocity only seeders move data, so the Table II
  // n_S / N scaling is directly visible.
  auto one = base();
  one.algorithm = Algorithm::kReciprocity;
  one.seeder_capacity = 256.0 * 1024;  // scarce seeding, visible contention
  one.max_time = 100.0;
  auto four = one;
  four.seeder_count = 4;
  const auto r1 = exp::run_scenario(one);
  const auto r4 = exp::run_scenario(four);
  ASSERT_FALSE(r1.bootstrap_times.empty());
  ASSERT_FALSE(r4.bootstrap_times.empty());
  EXPECT_LT(r4.bootstrap_summary.median, r1.bootstrap_summary.median);
}

TEST(BackPressure, MaxIncomingIsRespected) {
  auto config = base();
  config.max_incoming = 2;
  auto strategy = strategy::make_strategy(config.algorithm);
  Swarm s(config, std::move(strategy));
  int max_seen = 0;
  for (double t = 0.5; t < 30.0; t += 0.5) {
    s.engine().schedule_at(t, [&s, &max_seen] {
      for (PeerId i = 0; i < s.leechers(); ++i) {
        max_seen = std::max(max_seen, s.peer(i).incoming_count());
      }
    });
  }
  s.run();
  EXPECT_GT(max_seen, 0);
  EXPECT_LE(max_seen, 2);
  EXPECT_EQ(s.compliant_unfinished(), 0u);
}

TEST(BackPressure, TighterLimitSlowsDownloads) {
  auto loose = base();
  loose.max_time = 3000.0;
  auto tight = loose;
  tight.max_incoming = 1;
  const auto loose_report = exp::run_scenario(loose);
  const auto tight_report = exp::run_scenario(tight);
  ASSERT_FALSE(loose_report.completion_times.empty());
  ASSERT_FALSE(tight_report.completion_times.empty());
  EXPECT_GT(tight_report.completion_summary.mean,
            loose_report.completion_summary.mean);
}

}  // namespace
}  // namespace coopnet::sim
