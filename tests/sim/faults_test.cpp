// Fault-injection & churn layer: validation, retry/timeout machinery,
// churn bookkeeping, seeder outages, and determinism under faults.
#include "sim/faults.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "metrics/json.h"
#include "metrics/report.h"
#include "metrics/run_metrics.h"
#include "sim/swarm.h"
#include "strategy/factory.h"

namespace coopnet::sim {
namespace {

using core::Algorithm;

SwarmConfig fault_config(std::uint64_t seed = 7) {
  SwarmConfig c;
  c.algorithm = Algorithm::kAltruism;
  c.n_peers = 12;
  c.file_bytes = 16 * 64 * 1024;  // 16 pieces of 64 KB
  c.piece_bytes = 64 * 1024;
  c.capacities = core::CapacityDistribution::homogeneous(128.0 * 1024);
  c.seeder_capacity = 256.0 * 1024;
  c.graph.degree = 11;  // fully connected
  c.flash_crowd_window = 1.0;
  c.max_time = 5000.0;
  c.seed = seed;
  return c;
}

std::unique_ptr<Swarm> run_with(const SwarmConfig& config) {
  auto s = std::make_unique<Swarm>(config,
                                   strategy::make_strategy(config.algorithm));
  s->run();
  return s;
}

// --- FaultConfig validation ------------------------------------------------

TEST(FaultConfig, DefaultsDisableEverything) {
  FaultConfig f;
  EXPECT_FALSE(f.transfer_faults_enabled());
  EXPECT_FALSE(f.churn_enabled());
  EXPECT_FALSE(f.seeder_outages_enabled());
  EXPECT_FALSE(f.any_enabled());
  EXPECT_NO_THROW(f.validate());
}

TEST(FaultConfig, ValidationRejectsBadKnobs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto expect_bad = [](FaultConfig f) {
    EXPECT_THROW(f.validate(), std::invalid_argument);
  };
  {
    FaultConfig f;
    f.transfer_loss_rate = 1.0;  // certain loss would retry forever
    expect_bad(f);
  }
  {
    FaultConfig f;
    f.transfer_loss_rate = -0.1;
    expect_bad(f);
  }
  {
    FaultConfig f;
    f.transfer_stall_rate = nan;
    expect_bad(f);
  }
  {
    FaultConfig f;
    f.transfer_stall_rate = 0.1;
    f.stall_timeout = 0.0;
    expect_bad(f);
  }
  {
    FaultConfig f;
    f.max_retries = -1;
    expect_bad(f);
  }
  {
    FaultConfig f;
    f.transfer_loss_rate = 0.1;
    f.retry_backoff = -1.0;
    expect_bad(f);
  }
  {
    FaultConfig f;
    f.transfer_loss_rate = 0.1;
    f.retry_backoff_factor = 0.5;  // must not shrink
    expect_bad(f);
  }
  {
    FaultConfig f;
    f.churn_rate = -0.5;
    expect_bad(f);
  }
  {
    FaultConfig f;
    f.churn_rate = 0.01;
    f.rejoin_probability = 1.5;
    expect_bad(f);
  }
  {
    FaultConfig f;
    f.churn_rate = 0.01;
    f.mean_downtime = -1.0;
    expect_bad(f);
  }
  {
    FaultConfig f;
    f.seeder_uptime = 100.0;  // downtime missing
    expect_bad(f);
  }
}

TEST(FaultConfig, SwarmConfigValidateChecksFaults) {
  auto c = fault_config();
  c.faults.transfer_loss_rate = 2.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(FaultConfig, BackoffIsCappedExponential) {
  FaultConfig f;
  f.retry_backoff = 0.5;
  f.retry_backoff_factor = 2.0;
  f.retry_backoff_cap = 3.0;
  EXPECT_DOUBLE_EQ(f.backoff_for(0), 0.5);
  EXPECT_DOUBLE_EQ(f.backoff_for(1), 1.0);
  EXPECT_DOUBLE_EQ(f.backoff_for(2), 2.0);
  EXPECT_DOUBLE_EQ(f.backoff_for(3), 3.0);  // capped
  EXPECT_DOUBLE_EQ(f.backoff_for(10), 3.0);
}

// The pre-closed-form reference: multiply up the attempts, break at the
// cap (the shape backoff_for replaced; kept here as the property-test
// oracle).
double backoff_reference(const FaultConfig& f, int attempt) {
  double b = f.retry_backoff;
  for (int i = 0; i < attempt; ++i) {
    b *= f.retry_backoff_factor;
    if (b >= f.retry_backoff_cap) break;
  }
  return std::min(b, f.retry_backoff_cap);
}

TEST(FaultConfig, BackoffClosedFormMatchesReferenceLoop) {
  // A grid of (base, factor, cap) shapes: the defaults, fast growth,
  // non-dyadic factors, factor 1 (flat), and a cap below the base's first
  // doubling.
  const struct {
    double base, factor, cap;
  } shapes[] = {
      {0.5, 2.0, 8.0},    {0.5, 2.0, 3.0},    {1.0, 1.0, 10.0},
      {0.25, 1.5, 60.0},  {0.1, 3.7, 1e6},    {2.0, 10.0, 1e12},
      {0.5, 1.001, 2.0},
  };
  for (const auto& s : shapes) {
    FaultConfig f;
    f.retry_backoff = s.base;
    f.retry_backoff_factor = s.factor;
    f.retry_backoff_cap = s.cap;
    for (int attempt = 0; attempt <= 64; ++attempt) {
      const double expected = backoff_reference(f, attempt);
      const double got = f.backoff_for(attempt);
      // pow() and the multiply loop may differ by rounding; both are
      // clamped to the same cap, so the tolerance only matters pre-cap.
      EXPECT_NEAR(got, expected, 1e-9 * std::max(1.0, expected))
          << "base=" << s.base << " factor=" << s.factor << " cap=" << s.cap
          << " attempt=" << attempt;
    }
  }
}

TEST(FaultConfig, BackoffSaturatesInsteadOfOverflowing) {
  FaultConfig f;
  f.retry_backoff = 1.0;
  f.retry_backoff_factor = 1e10;  // factor^64 overflows double to +inf
  f.retry_backoff_cap = 30.0;
  for (int attempt : {32, 64, 1000, std::numeric_limits<int>::max()}) {
    const double b = f.backoff_for(attempt);
    EXPECT_TRUE(std::isfinite(b)) << "attempt=" << attempt;
    EXPECT_DOUBLE_EQ(b, 30.0) << "attempt=" << attempt;
  }
  // Defensive: a nonsense negative attempt behaves like attempt 0.
  EXPECT_DOUBLE_EQ(f.backoff_for(-3), 1.0);
}

// --- fault-free runs -------------------------------------------------------

TEST(Faults, FaultFreeRunHasCleanStats) {
  auto sp = run_with(fault_config());
  Swarm& s = *sp;
  EXPECT_EQ(s.compliant_unfinished(), 0u);
  const FaultStats& f = s.fault_stats();
  EXPECT_EQ(f.transfer_failures, 0u);
  EXPECT_EQ(f.transfer_stalls, 0u);
  EXPECT_EQ(f.uploader_vanished, 0u);
  EXPECT_EQ(f.retries_scheduled, 0u);
  EXPECT_EQ(f.transfers_abandoned, 0u);
  EXPECT_EQ(f.churn_departures, 0u);
  EXPECT_EQ(f.seeder_outages, 0u);
  EXPECT_GT(f.offered_bytes, 0);
  EXPECT_DOUBLE_EQ(s.fault_stats().goodput_ratio(), 1.0);
}

// --- transfer faults -------------------------------------------------------

TEST(Faults, LossyTransfersRetryAndRecover) {
  auto c = fault_config();
  c.faults.transfer_loss_rate = 0.3;
  c.faults.max_retries = 6;
  auto sp = run_with(c);
  Swarm& s = *sp;
  // The swarm absorbs 30% loss: everyone still finishes.
  EXPECT_EQ(s.compliant_unfinished(), 0u);
  const FaultStats& f = s.fault_stats();
  EXPECT_GT(f.transfer_failures, 0u);
  EXPECT_GT(f.retries_scheduled, 0u);
  EXPECT_GT(f.retry_successes, 0u);
  EXPECT_LT(f.goodput_ratio(), 1.0);
  EXPECT_GT(f.goodput_ratio(), 0.0);
}

TEST(Faults, StalledTransfersTimeOut) {
  auto c = fault_config();
  c.faults.transfer_stall_rate = 0.2;
  c.faults.stall_timeout = 10.0;
  auto sp = run_with(c);
  Swarm& s = *sp;
  EXPECT_EQ(s.compliant_unfinished(), 0u);
  const FaultStats& f = s.fault_stats();
  EXPECT_GT(f.transfer_stalls, 0u);
  EXPECT_EQ(f.transfer_failures, 0u);  // only stalls were enabled
}

TEST(Faults, ZeroRetriesAbandonsImmediately) {
  auto c = fault_config();
  c.faults.transfer_loss_rate = 0.3;
  c.faults.max_retries = 0;
  auto sp = run_with(c);
  Swarm& s = *sp;
  const FaultStats& f = s.fault_stats();
  EXPECT_GT(f.transfers_abandoned, 0u);
  EXPECT_EQ(f.retries_scheduled, 0u);
  // Abandoned pieces get re-requested through the normal machinery, so the
  // swarm still drains.
  EXPECT_EQ(s.compliant_unfinished(), 0u);
}

TEST(Faults, LossDoesNotCreditUploaderBytes) {
  auto c = fault_config();
  c.faults.transfer_loss_rate = 0.4;
  c.faults.max_retries = 2;
  auto sp = run_with(c);
  Swarm& s = *sp;
  // Every credited uploaded byte corresponds to a completed slot; raw
  // downloads can only lag uploads by in-flight-at-departure payloads.
  Bytes uploaded = 0, raw = 0;
  for (const ConstPeer p : s.peers()) {
    uploaded += p.uploaded_bytes();
    raw += p.downloaded_raw_bytes();
  }
  EXPECT_GE(uploaded, raw);
  EXPECT_EQ(s.fault_stats().goodput_bytes, raw);
}

// --- leecher churn ---------------------------------------------------------

TEST(Faults, ChurnedPeersRejoinAndFinish) {
  auto c = fault_config();
  c.faults.churn_rate = 1.0 / 150.0;
  c.faults.rejoin_probability = 1.0;
  c.faults.mean_downtime = 10.0;
  auto sp = run_with(c);
  Swarm& s = *sp;
  const FaultStats& f = s.fault_stats();
  EXPECT_GT(f.churn_departures, 0u);
  EXPECT_EQ(f.churn_rejoins, f.churn_departures);
  EXPECT_EQ(f.churn_losses, 0u);
  // Everyone keeps their pieces across downtime and eventually finishes.
  EXPECT_EQ(s.compliant_unfinished(), 0u);
  for (PeerId i = 0; i < s.leechers(); ++i) {
    EXPECT_TRUE(s.peer(i).finished()) << i;
  }
}

TEST(Faults, PermanentChurnShrinksTheSwarm) {
  auto c = fault_config();
  c.faults.churn_rate = 1.0 / 100.0;
  c.faults.rejoin_probability = 0.0;
  auto sp = run_with(c);
  Swarm& s = *sp;
  const FaultStats& f = s.fault_stats();
  ASSERT_GT(f.churn_losses, 0u);
  EXPECT_EQ(f.churn_rejoins, 0u);
  std::size_t finished = 0;
  for (PeerId i = 0; i < s.leechers(); ++i) {
    if (s.peer(i).finished()) ++finished;
  }
  EXPECT_EQ(finished + f.churn_losses, s.leechers());
  // The run must not idle waiting for peers that will never come back.
  EXPECT_EQ(s.compliant_unfinished(), 0u);
}

TEST(Faults, ChurnKeepsPieceAvailabilityConsistent) {
  auto c = fault_config();
  c.faults.churn_rate = 1.0 / 80.0;
  c.faults.rejoin_probability = 0.7;
  c.faults.mean_downtime = 15.0;
  c.max_time = 800.0;  // cut mid-flight: counters must still balance
  auto sp = run_with(c);
  Swarm& s = *sp;
  // Recompute availability from scratch; it must match the incremental
  // counters the swarm maintained through every churn-out and rejoin
  // (seeders contribute exactly one count per piece).
  for (PieceId piece = 0; piece < s.config().piece_count(); ++piece) {
    std::uint32_t expect = 1;
    for (PeerId i = 0; i < s.leechers(); ++i) {
      const ConstPeer p = s.peer(i);
      if (p.active() && p.pieces().has(piece)) ++expect;
    }
    EXPECT_EQ(s.piece_frequency(piece), expect) << "piece " << piece;
  }
}

// --- seeder outages --------------------------------------------------------

TEST(Faults, SeederOutagesAreWindowedAndSurvivable) {
  auto c = fault_config();
  // The small scenario drains in tens of seconds; blink the seeder well
  // within that span.
  c.faults.seeder_uptime = 4.0;
  c.faults.seeder_downtime = 4.0;
  auto sp = run_with(c);
  Swarm& s = *sp;
  EXPECT_GT(s.fault_stats().seeder_outages, 0u);
  // With leechers re-serving pieces, the swarm outlives the blinking seeder.
  EXPECT_EQ(s.compliant_unfinished(), 0u);
}

// --- metrics plumbing ------------------------------------------------------

TEST(Faults, FaultStatsReachReportAndJson) {
  auto c = fault_config();
  c.faults.transfer_loss_rate = 0.2;
  Swarm s(c, strategy::make_strategy(c.algorithm));
  metrics::RunMetrics m;
  m.install(s);
  s.run();
  const metrics::RunReport r = metrics::build_report(s, m);
  EXPECT_EQ(r.faults.transfer_failures, s.fault_stats().transfer_failures);
  EXPECT_LT(r.goodput_ratio, 1.0);
  const std::string json = metrics::to_json(r, 2);
  EXPECT_NE(json.find("\"goodput_ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"transfer_failures\""), std::string::npos);
  EXPECT_NE(json.find("\"churn_departures\""), std::string::npos);
}

// --- determinism -----------------------------------------------------------

struct RunFingerprint {
  std::vector<double> finish_times;
  std::vector<Bytes> uploaded;
  std::uint64_t failures = 0, stalls = 0, retries = 0, abandoned = 0;
  std::uint64_t departures = 0, rejoins = 0;
  Bytes offered = 0, goodput = 0;
  double end_time = 0.0;

  bool operator==(const RunFingerprint& o) const {
    return finish_times == o.finish_times && uploaded == o.uploaded &&
           failures == o.failures && stalls == o.stalls &&
           retries == o.retries && abandoned == o.abandoned &&
           departures == o.departures && rejoins == o.rejoins &&
           offered == o.offered && goodput == o.goodput &&
           end_time == o.end_time;
  }
};

RunFingerprint fingerprint(Algorithm algo, std::uint64_t seed) {
  auto c = fault_config(seed);
  c.algorithm = algo;
  // Fault clocks sized to the small scenario's tens-of-seconds runs so
  // every fault class actually fires.
  c.faults.transfer_loss_rate = 0.15;
  c.faults.transfer_stall_rate = 0.05;
  c.faults.stall_timeout = 8.0;
  c.faults.churn_rate = 1.0 / 30.0;
  c.faults.rejoin_probability = 0.8;
  c.faults.mean_downtime = 5.0;
  c.faults.seeder_uptime = 6.0;
  c.faults.seeder_downtime = 5.0;
  auto sp = run_with(c);
  Swarm& s = *sp;
  RunFingerprint fp;
  for (const ConstPeer p : s.peers()) {
    fp.finish_times.push_back(p.finish_time());
    fp.uploaded.push_back(p.uploaded_bytes());
  }
  const FaultStats& f = s.fault_stats();
  fp.failures = f.transfer_failures;
  fp.stalls = f.transfer_stalls;
  fp.retries = f.retries_scheduled;
  fp.abandoned = f.transfers_abandoned;
  fp.departures = f.churn_departures;
  fp.rejoins = f.churn_rejoins;
  fp.offered = f.offered_bytes;
  fp.goodput = f.goodput_bytes;
  fp.end_time = s.engine().now();
  return fp;
}

class FaultDeterminism : public ::testing::TestWithParam<Algorithm> {};

TEST_P(FaultDeterminism, SameSeedSameFaultsSameRun) {
  const RunFingerprint a = fingerprint(GetParam(), 21);
  const RunFingerprint b = fingerprint(GetParam(), 21);
  EXPECT_TRUE(a == b);
  // The faults actually fired (the fingerprint is not vacuous).
  EXPECT_GT(a.failures + a.stalls, 0u);
  EXPECT_GT(a.departures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, FaultDeterminism,
                         ::testing::Values(Algorithm::kBitTorrent,
                                           Algorithm::kFairTorrent,
                                           Algorithm::kTChain),
                         [](const auto& info) {
                           // Test names must be alphanumeric ("T-Chain" is
                           // not a valid identifier).
                           std::string out;
                           for (char ch : core::to_string(info.param)) {
                             if (std::isalnum(static_cast<unsigned char>(ch)))
                               out += ch;
                           }
                           return out;
                         });

}  // namespace
}  // namespace coopnet::sim
