// --threads byte-identity matrix: for every mechanism, with and without
// faults, a swarm run with config.threads in {2, 4} must produce the
// byte-identical RunReport JSON and streaming trace that the sequential
// (threads = 1) run produces. The threads = 1 runs themselves are pinned
// to the seed goldens by swarm_equivalence_test, so equality here chains
// the parallel mode all the way back to the seed implementation.
//
// This is the determinism contract of DESIGN §11: worker threads only
// pre-warm interest-memo caches during an effect-free prepare phase;
// every event commits on one thread in exact (time, seq) order, so any
// thread count replays the same event sequence, RNG stream, and output
// bytes.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/json.h"
#include "metrics/report.h"
#include "metrics/run_metrics.h"
#include "metrics/trace_sink.h"
#include "sim/faults.h"
#include "sim/swarm.h"
#include "strategy/factory.h"

namespace coopnet::sim {
namespace {

struct Cell {
  core::Algorithm algo;
  bool churn;
};

std::string cell_name(const Cell& cell) {
  std::string name = core::to_string(cell.algo);
  for (auto& c : name) {
    if (c == '-' || c == ' ') c = '_';
  }
  return name + (cell.churn ? "_churn" : "_clean");
}

// Same shape as swarm_equivalence_test's fault cells: moderate churn plus
// 5% transfer loss layers the retry/backoff and epoch-guard paths (the
// barrier-hinted events) on top of the happy path.
SwarmConfig cell_config(const Cell& cell, std::size_t threads) {
  auto config = SwarmConfig::small(cell.algo, /*seed=*/415);
  config.n_peers = 50;
  config.max_time = 4000.0;
  if (cell.churn) {
    config.faults = moderate_churn();
    config.faults.transfer_loss_rate = 0.05;
  }
  config.threads = threads;
  return config;
}

struct CellResult {
  std::string report_json;
  std::vector<std::string> trace_lines;
};

CellResult run_cell(const Cell& cell, std::size_t threads) {
  const SwarmConfig config = cell_config(cell, threads);
  Swarm swarm(config, strategy::make_strategy(config.algorithm));
  metrics::RunMetrics collector;
  collector.install(swarm);
  std::ostringstream trace;
  metrics::TraceSink sink(trace);
  sink.chain(&collector);
  swarm.set_observer(&sink);
  swarm.run();

  CellResult result;
  result.report_json =
      metrics::to_json(metrics::build_report(swarm, collector));
  std::istringstream lines(trace.str());
  std::string line;
  while (std::getline(lines, line)) result.trace_lines.push_back(line);
  return result;
}

class ThreadsDeterminism : public ::testing::TestWithParam<Cell> {};

TEST_P(ThreadsDeterminism, AnyThreadCountIsByteIdenticalToSequential) {
  const Cell cell = GetParam();
  const CellResult sequential = run_cell(cell, /*threads=*/1);
  ASSERT_FALSE(sequential.report_json.empty());
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const CellResult parallel = run_cell(cell, threads);
    EXPECT_EQ(parallel.report_json, sequential.report_json)
        << cell_name(cell) << ": RunReport JSON diverged at --threads "
        << threads;
    ASSERT_EQ(parallel.trace_lines.size(), sequential.trace_lines.size())
        << cell_name(cell) << ": trace line count diverged at --threads "
        << threads;
    for (std::size_t i = 0; i < sequential.trace_lines.size(); ++i) {
      ASSERT_EQ(parallel.trace_lines[i], sequential.trace_lines[i])
          << cell_name(cell) << ": trace line " << i + 1
          << " diverged at --threads " << threads;
    }
  }
}

std::vector<Cell> all_cells() {
  std::vector<Cell> cells;
  for (core::Algorithm algo : core::kAllAlgorithms) {
    for (bool churn : {false, true}) {
      cells.push_back({algo, churn});
    }
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, ThreadsDeterminism,
                         ::testing::ValuesIn(all_cells()),
                         [](const ::testing::TestParamInfo<Cell>& info) {
                           return cell_name(info.param);
                         });

// The attack timers (whitewash resets, sybil praise) and the linger path
// schedule through plain and barrier hints respectively; one combined
// scenario pins them under parallel execution too.
TEST(ThreadsDeterminism, AttacksAndLingerMatchSequential) {
  auto make = [](std::size_t threads) {
    auto config = SwarmConfig::small(core::Algorithm::kReputation,
                                     /*seed=*/77);
    config.n_peers = 50;
    config.free_rider_fraction = 0.2;
    config.attack.sybil_praise = true;
    config.attack.whitewashing = true;
    config.linger_time = 30.0;
    config.threads = threads;
    Swarm swarm(config, strategy::make_strategy(config.algorithm));
    metrics::RunMetrics collector;
    collector.install(swarm);
    swarm.run();
    return metrics::to_json(metrics::build_report(swarm, collector));
  };
  const std::string sequential = make(1);
  EXPECT_EQ(make(2), sequential);
  EXPECT_EQ(make(4), sequential);
}

}  // namespace
}  // namespace coopnet::sim
