#include "sim/engine.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace coopnet::sim {
namespace {

TEST(SimEngine, StartsAtZero) {
  SimEngine e;
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.events_processed(), 0u);
}

TEST(SimEngine, RunsEventsInTimeOrder) {
  SimEngine e;
  std::vector<int> order;
  e.schedule(3.0, [&] { order.push_back(3); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(SimEngine, TiesBreakInSchedulingOrder) {
  SimEngine e;
  std::vector<int> order;
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(1.0, [&] { order.push_back(2); });
  e.schedule(1.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimEngine, EventsCanScheduleEvents) {
  SimEngine e;
  int fired = 0;
  e.schedule(1.0, [&] {
    ++fired;
    e.schedule(1.0, [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 2.0);
}

TEST(SimEngine, RunUntilLeavesLaterEventsQueued) {
  SimEngine e;
  int fired = 0;
  e.schedule(1.0, [&] { ++fired; });
  e.schedule(5.0, [&] { ++fired; });
  e.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 2.0);  // clock advances to the deadline
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimEngine, StopHaltsTheLoop) {
  SimEngine e;
  int fired = 0;
  e.schedule(1.0, [&] {
    ++fired;
    e.stop();
  });
  e.schedule(2.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.stopped());
  EXPECT_EQ(e.pending(), 1u);
}

TEST(SimEngine, StopIsStickyUntilReset) {
  SimEngine e;
  e.schedule(1.0, [&] { e.stop(); });
  e.run();
  ASSERT_TRUE(e.stopped());

  // A stop raised inside an event must not be swallowed by the next run:
  // both run() and run_until() return immediately without executing events
  // or advancing the clock.
  int fired = 0;
  e.schedule(1.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 0);
  e.run_until(10.0);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(e.now(), 1.0);
  EXPECT_EQ(e.pending(), 1u);

  // Only an explicit reset lets the engine run again.
  e.reset_stop();
  EXPECT_FALSE(e.stopped());
  e.run_until(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 10.0);
}

TEST(SimEngine, RejectsBadScheduling) {
  SimEngine e;
  EXPECT_THROW(e.schedule(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(e.schedule(1.0, SimEngine::EventFn{}), std::invalid_argument);
  e.schedule(5.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(SimEngine, RunUntilWithEmptyQueueAdvancesClock) {
  SimEngine e;
  e.run_until(7.0);
  EXPECT_EQ(e.now(), 7.0);
}

// A self-rescheduling chain that would run forever without supervision.
// (EventFn is move-only, so the recursion goes through a functor that
// schedules a fresh copy of itself.)
struct Ticker {
  SimEngine* e;
  void operator()() const { e->schedule(1.0, Ticker{e}); }
};

TEST(SimEngine, EventLimitStopsAfterExactlyNEvents) {
  SimEngine e;
  e.schedule(1.0, Ticker{&e});
  e.set_event_limit(5);
  e.run();
  EXPECT_EQ(e.events_processed(), 5u);
  EXPECT_TRUE(e.event_limit_hit());
  EXPECT_TRUE(e.stopped());

  // Sticky like stop(): another run() without a reset does nothing.
  e.run();
  EXPECT_EQ(e.events_processed(), 5u);

  // Raising the limit and clearing the stop resumes the same chain; the
  // new limit is again exact.
  e.set_event_limit(8);
  EXPECT_FALSE(e.event_limit_hit());
  e.reset_stop();
  e.run();
  EXPECT_EQ(e.events_processed(), 8u);
  EXPECT_TRUE(e.event_limit_hit());
}

TEST(SimEngine, GuardRunsAtItsCadenceAndCanStopTheRun) {
  SimEngine e;
  e.schedule(1.0, Ticker{&e});
  int guard_calls = 0;
  e.set_guard(3, [&] {
    if (++guard_calls == 4) e.stop();
  });
  e.run();
  // Guard fires after events 3, 6, 9, 12; the fourth call stops the run.
  EXPECT_EQ(guard_calls, 4);
  EXPECT_EQ(e.events_processed(), 12u);
  // A guard-initiated stop is a plain stop, not an event-limit hit.
  EXPECT_FALSE(e.event_limit_hit());
}

TEST(SimEngine, GuardDoesNotPerturbEventOrderOrClock) {
  // Identical schedules with and without an (inert) guard must pop in the
  // same order at the same times -- supervision must be invisible when it
  // does not fire.
  const auto run_trace = [](bool with_guard) {
    SimEngine e;
    if (with_guard) e.set_guard(2, [] {});
    std::vector<std::pair<double, int>> trace;
    for (int i = 0; i < 6; ++i) {
      // Ties at t=1.0 and t=2.0 exercise the seq tie-break.
      e.schedule(1.0 + (i % 2), [&trace, &e, i] {
        trace.emplace_back(e.now(), i);
      });
    }
    e.run();
    return trace;
  };
  EXPECT_EQ(run_trace(false), run_trace(true));
}

}  // namespace
}  // namespace coopnet::sim
