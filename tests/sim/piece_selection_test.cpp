// Tests for the piece-selection policies and their effect on piece
// availability (the eq. 4-8 model assumes rarest-first's near-uniform
// piece spread), plus property tests for the frequency-bucket rarity
// index behind rarest-first (sim/piece_freq_index.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exp/runner.h"
#include "metrics/availability.h"
#include "sim/piece_freq_index.h"
#include "sim/swarm.h"
#include "strategy/factory.h"
#include "util/rng.h"

namespace coopnet::sim {
namespace {

using core::Algorithm;

SwarmConfig selection_config(PieceSelection policy,
                             std::uint64_t seed = 101) {
  auto config = SwarmConfig::small(Algorithm::kAltruism, seed);
  config.n_peers = 50;
  config.piece_selection = policy;
  config.max_time = 3000.0;
  return config;
}

TEST(PieceSelection, AllPoliciesCompleteTheSwarm) {
  for (PieceSelection policy :
       {PieceSelection::kRarestFirst, PieceSelection::kRandom,
        PieceSelection::kSequential}) {
    const auto report = exp::run_scenario(selection_config(policy));
    EXPECT_NEAR(report.completed_fraction, 1.0, 1e-9)
        << static_cast<int>(policy);
  }
}

TEST(PieceSelection, SequentialPicksLowestIndex) {
  auto config = selection_config(PieceSelection::kSequential);
  config.max_time = 3.0;  // just the first seeder deliveries
  Swarm s(config, strategy::make_strategy(config.algorithm));
  s.run();
  // Under a sequential policy, early pieces concentrate at low indices.
  std::size_t low = 0, high = 0;
  const PieceId mid = config.piece_count() / 2;
  for (PeerId i = 0; i < s.leechers(); ++i) {
    for (PieceId q = 0; q < config.piece_count(); ++q) {
      if (!s.peer(i).pieces().has(q)) continue;
      if (q < mid) {
        ++low;
      } else {
        ++high;
      }
    }
  }
  EXPECT_GT(low, high * 3);
}

TEST(PieceSelection, RarestFirstKeepsReplicationBalanced) {
  // Min-replication under rarest-first must dominate sequential's: the
  // whole point of the policy is to avoid endangered pieces.
  auto measure = [](PieceSelection policy) {
    auto config = selection_config(policy);
    config.max_time = 7.0;  // mid-swarm snapshot, well before completion
    Swarm s(config, strategy::make_strategy(config.algorithm));
    s.run();
    return metrics::availability_snapshot(s);
  };
  const auto rarest = measure(PieceSelection::kRarestFirst);
  const auto sequential = measure(PieceSelection::kSequential);
  ASSERT_GT(rarest.active_leechers, 0u);
  ASSERT_GT(sequential.active_leechers, 0u);
  EXPECT_GE(rarest.min_replication, sequential.min_replication);
  // Sequential selection also slows the swarm down: everyone holds (and
  // wants) the same low-index prefix, so peers can rarely serve each other
  // -- the piece-availability friction of Section IV-A.2 made visible.
  EXPECT_GT(rarest.mean_pieces, sequential.mean_pieces);
}

TEST(PieceSelection, PoliciesProduceDifferentRuns) {
  const auto a = exp::run_scenario(
      selection_config(PieceSelection::kRarestFirst));
  const auto b =
      exp::run_scenario(selection_config(PieceSelection::kRandom));
  EXPECT_NE(a.completion_times, b.completion_times);
}

// --- frequency-bucket index properties ---------------------------------

/// The pre-index full scan (what Swarm::pick_piece did before
/// sim/piece_freq_index.h): reservoir tie-break over every offerable
/// piece, ascending. pick_rarest must match it pick-for-pick AND
/// draw-for-draw.
PieceId reference_rarest(const PieceSet& offer, const PieceSet& excluded,
                         const std::vector<std::uint32_t>& freq,
                         util::Rng& rng) {
  PieceId best = kNoPiece;
  std::uint32_t best_freq = 0;
  std::uint64_t ties = 0;
  offer.for_each_offerable(excluded, [&](PieceId p) {
    const std::uint32_t f = freq[p];
    if (best == kNoPiece || f < best_freq) {
      best = p;
      best_freq = f;
      ties = 1;
    } else if (f == best_freq) {
      ++ties;
      if (rng.uniform_u64(ties) == 0) best = p;
    }
  });
  return best;
}

/// Invariant: bit p of level row f is set iff freq(p) <= f, for every row.
void expect_levels_match_recount(const PieceFreqIndex& idx) {
  for (std::uint32_t f = 0; f <= idx.max_freq(); ++f) {
    const std::uint64_t* level = idx.level_words(f);
    for (std::size_t w = 0; w < idx.word_count(); ++w) {
      std::uint64_t expect = 0;
      for (std::size_t b = 0; b < 64; ++b) {
        const std::size_t p = w * 64 + b;
        if (p >= idx.pieces()) break;
        if (idx.freq(static_cast<PieceId>(p)) <= f) {
          expect |= std::uint64_t{1} << b;
        }
      }
      ASSERT_EQ(level[w], expect) << "level " << f << " word " << w;
    }
  }
}

TEST(PieceFreqIndex, LevelMasksMatchRecountUnderRandomOps) {
  constexpr PieceId kPieces = 200;
  constexpr std::uint32_t kMaxFreq = 12;
  PieceFreqIndex idx;
  idx.init(kPieces, kMaxFreq);
  expect_levels_match_recount(idx);
  std::vector<std::uint32_t> shadow(kPieces, 0);
  util::Rng rng(12345);
  for (int step = 0; step < 5000; ++step) {
    const auto p = static_cast<PieceId>(rng.uniform_u64(kPieces));
    const bool up = shadow[p] == 0 ||
                    (shadow[p] < kMaxFreq && rng.uniform_u64(2) == 0);
    if (up) {
      idx.increment(p);
      ++shadow[p];
    } else {
      idx.decrement(p);
      --shadow[p];
    }
    ASSERT_EQ(idx.freq(p), shadow[p]);
    if (step % 500 == 0) expect_levels_match_recount(idx);
  }
  expect_levels_match_recount(idx);
}

TEST(PieceFreqIndex, SwarmIndexMatchesRecountMidRun) {
  // The swarm bumps the index on make_usable/depart/rejoin; after a real
  // (partial) run the level masks must still recount from the per-piece
  // frequencies.
  auto config = selection_config(PieceSelection::kRarestFirst);
  config.max_time = 7.0;  // mid-swarm snapshot
  Swarm s(config, strategy::make_strategy(config.algorithm));
  s.run();
  expect_levels_match_recount(s.piece_freq_index());
}

TEST(PieceFreqIndex, PickRarestMatchesReferenceScanInLockstep) {
  constexpr PieceId kPieces = 150;
  constexpr std::uint32_t kMaxFreq = 10;
  PieceFreqIndex idx;
  idx.init(kPieces, kMaxFreq);
  std::vector<std::uint32_t> freq(kPieces, 0);
  util::Rng setup(7);
  for (PieceId p = 0; p < kPieces; ++p) {
    const auto f = static_cast<std::uint32_t>(setup.uniform_u64(6));
    for (std::uint32_t i = 0; i < f; ++i) idx.increment(p);
    freq[p] = f;
  }
  util::Rng fast_rng(99);
  util::Rng slow_rng(99);
  util::Rng sets(31);
  for (int round = 0; round < 10000; ++round) {
    PieceSet offer(kPieces);
    PieceSet excluded(kPieces);
    for (PieceId p = 0; p < kPieces; ++p) {
      if (sets.uniform_u64(100) < 60) offer.add(p);
      if (sets.uniform_u64(100) < 40) excluded.add(p);
    }
    const PieceId fast = idx.pick_rarest(offer, excluded, fast_rng);
    const PieceId slow = reference_rarest(offer, excluded, freq, slow_rng);
    ASSERT_EQ(fast, slow) << "round " << round;
    // Same draw count and bounds: the streams must stay in lockstep.
    ASSERT_EQ(fast_rng.uniform_u64(std::uint64_t{1} << 30),
              slow_rng.uniform_u64(std::uint64_t{1} << 30))
        << "round " << round;
    // Churn the frequencies between picks to interleave bump paths.
    const auto m = static_cast<PieceId>(sets.uniform_u64(kPieces));
    if (freq[m] > 0 && sets.uniform_u64(2) == 0) {
      idx.decrement(m);
      --freq[m];
    } else if (freq[m] < kMaxFreq) {
      idx.increment(m);
      ++freq[m];
    }
  }
}

TEST(PieceFreqIndex, TieBreakDistributionIsUniform) {
  // kTied pieces share the minimum frequency; over many draws the
  // reservoir must pick each near-uniformly. The seed is fixed, so the
  // chi-squared statistic is deterministic: a failure means a real bias,
  // not noise.
  constexpr PieceId kPieces = 64;
  constexpr PieceId kTied = 8;
  constexpr int kDraws = 10000;
  PieceFreqIndex idx;
  idx.init(kPieces, 8);
  PieceSet offer(kPieces);
  PieceSet excluded(kPieces);
  for (PieceId p = 0; p < kPieces; ++p) {
    offer.add(p);
    idx.increment(p);  // everyone holds >= 1 copy
    if (p >= kTied) {  // the rest sit strictly higher
      idx.increment(p);
      idx.increment(p);
    }
  }
  std::vector<int> hits(kPieces, 0);
  util::Rng rng(2024);
  for (int d = 0; d < kDraws; ++d) {
    const PieceId pick = idx.pick_rarest(offer, excluded, rng);
    ASSERT_NE(pick, kNoPiece);
    ASSERT_LT(pick, kTied);  // only tied-minimum pieces can win
    ++hits[pick];
  }
  const double expected = static_cast<double>(kDraws) / kTied;
  double chi2 = 0.0;
  for (PieceId p = 0; p < kTied; ++p) {
    const double diff = static_cast<double>(hits[p]) - expected;
    chi2 += diff * diff / expected;
  }
  // 7 degrees of freedom; 24.32 is the 99.9th-percentile critical value.
  EXPECT_LT(chi2, 24.32);
}

// --- piece_frequency range contract ------------------------------------

TEST(PieceFrequencyDeathTest, OutOfRangePieceIdAssertsInDebugBuilds) {
#ifdef NDEBUG
  GTEST_SKIP() << "range asserts compile out of NDEBUG builds";
#else
  auto config = selection_config(PieceSelection::kRarestFirst);
  Swarm s(config, strategy::make_strategy(config.algorithm));
  EXPECT_DEATH(
      (void)s.piece_frequency(config.piece_count() + 1000),
      "piece out of range");
#endif
}

}  // namespace
}  // namespace coopnet::sim
