// Tests for the piece-selection policies and their effect on piece
// availability (the eq. 4-8 model assumes rarest-first's near-uniform
// piece spread).
#include <gtest/gtest.h>

#include "exp/runner.h"
#include "metrics/availability.h"
#include "sim/swarm.h"
#include "strategy/factory.h"

namespace coopnet::sim {
namespace {

using core::Algorithm;

SwarmConfig selection_config(PieceSelection policy,
                             std::uint64_t seed = 101) {
  auto config = SwarmConfig::small(Algorithm::kAltruism, seed);
  config.n_peers = 50;
  config.piece_selection = policy;
  config.max_time = 3000.0;
  return config;
}

TEST(PieceSelection, AllPoliciesCompleteTheSwarm) {
  for (PieceSelection policy :
       {PieceSelection::kRarestFirst, PieceSelection::kRandom,
        PieceSelection::kSequential}) {
    const auto report = exp::run_scenario(selection_config(policy));
    EXPECT_NEAR(report.completed_fraction, 1.0, 1e-9)
        << static_cast<int>(policy);
  }
}

TEST(PieceSelection, SequentialPicksLowestIndex) {
  auto config = selection_config(PieceSelection::kSequential);
  config.max_time = 3.0;  // just the first seeder deliveries
  Swarm s(config, strategy::make_strategy(config.algorithm));
  s.run();
  // Under a sequential policy, early pieces concentrate at low indices.
  std::size_t low = 0, high = 0;
  const PieceId mid = config.piece_count() / 2;
  for (PeerId i = 0; i < s.leechers(); ++i) {
    for (PieceId q = 0; q < config.piece_count(); ++q) {
      if (!s.peer(i).pieces.has(q)) continue;
      if (q < mid) {
        ++low;
      } else {
        ++high;
      }
    }
  }
  EXPECT_GT(low, high * 3);
}

TEST(PieceSelection, RarestFirstKeepsReplicationBalanced) {
  // Min-replication under rarest-first must dominate sequential's: the
  // whole point of the policy is to avoid endangered pieces.
  auto measure = [](PieceSelection policy) {
    auto config = selection_config(policy);
    config.max_time = 7.0;  // mid-swarm snapshot, well before completion
    Swarm s(config, strategy::make_strategy(config.algorithm));
    s.run();
    return metrics::availability_snapshot(s);
  };
  const auto rarest = measure(PieceSelection::kRarestFirst);
  const auto sequential = measure(PieceSelection::kSequential);
  ASSERT_GT(rarest.active_leechers, 0u);
  ASSERT_GT(sequential.active_leechers, 0u);
  EXPECT_GE(rarest.min_replication, sequential.min_replication);
  // Sequential selection also slows the swarm down: everyone holds (and
  // wants) the same low-index prefix, so peers can rarely serve each other
  // -- the piece-availability friction of Section IV-A.2 made visible.
  EXPECT_GT(rarest.mean_pieces, sequential.mean_pieces);
}

TEST(PieceSelection, PoliciesProduceDifferentRuns) {
  const auto a = exp::run_scenario(
      selection_config(PieceSelection::kRarestFirst));
  const auto b =
      exp::run_scenario(selection_config(PieceSelection::kRandom));
  EXPECT_NE(a.completion_times, b.completion_times);
}

}  // namespace
}  // namespace coopnet::sim
