// InvariantAuditor: the full fault/churn matrix runs clean, corrupted
// state is detected with a structured diagnostic, and the audit knobs
// behave (cadence, opt-out, compile-time gating).
#include "sim/auditor.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sim/faults.h"
#include "sim/swarm.h"
#include "strategy/factory.h"

namespace coopnet::sim {
namespace {

using core::Algorithm;

SwarmConfig audit_config(Algorithm algo, std::uint64_t seed = 7) {
  SwarmConfig c;
  c.algorithm = algo;
  c.n_peers = 12;
  c.file_bytes = 16 * 64 * 1024;  // 16 pieces of 64 KB
  c.piece_bytes = 64 * 1024;
  c.capacities = core::CapacityDistribution::homogeneous(128.0 * 1024);
  c.seeder_capacity = 256.0 * 1024;
  c.graph.degree = 11;  // fully connected
  c.flash_crowd_window = 1.0;
  c.max_time = 5000.0;
  c.seed = seed;
  return c;
}

std::unique_ptr<Swarm> run_with(const SwarmConfig& config) {
  auto s = std::make_unique<Swarm>(config,
                                   strategy::make_strategy(config.algorithm));
  s->run();
  return s;
}

// --- plumbing --------------------------------------------------------------

TEST(Auditor, AuditorPresentExactlyWhenCompiledInAndEnabled) {
  auto config = audit_config(Algorithm::kAltruism);
  ASSERT_EQ(config.audit_every, 1u);  // audit builds audit by default
  {
    Swarm swarm(config, strategy::make_strategy(config.algorithm));
    EXPECT_EQ(swarm.auditor() != nullptr, kAuditCompiledIn);
  }
  config.audit_every = 0;  // explicit opt-out works even in audit builds
  {
    Swarm swarm(config, strategy::make_strategy(config.algorithm));
    EXPECT_EQ(swarm.auditor(), nullptr);
  }
}

TEST(Auditor, CleanRunPassesEveryCheck) {
  if (!kAuditCompiledIn) GTEST_SKIP() << "needs -DCOOPNET_AUDIT=ON";
  auto swarm = run_with(audit_config(Algorithm::kBitTorrent));
  const InvariantAuditor* auditor = swarm->auditor();
  ASSERT_NE(auditor, nullptr);
  EXPECT_GT(auditor->events_recorded(), 0u);
  EXPECT_GT(auditor->checks_run(), 0u);
  // The run drained: nothing in flight, nothing held.
  EXPECT_EQ(auditor->inflight_count(), 0u);
  EXPECT_NO_THROW(auditor->check_now());
}

TEST(Auditor, CheckCadenceIsRespected) {
  if (!kAuditCompiledIn) GTEST_SKIP() << "needs -DCOOPNET_AUDIT=ON";
  auto config = audit_config(Algorithm::kAltruism);
  config.audit_every = 64;
  auto swarm = run_with(config);
  const InvariantAuditor* auditor = swarm->auditor();
  ASSERT_NE(auditor, nullptr);
  EXPECT_GT(auditor->events_recorded(), 0u);
  // Sparse cadence runs far fewer checks than events.
  EXPECT_LT(auditor->checks_run(), auditor->events_recorded());
}

// --- the bug-sweep matrix --------------------------------------------------

// Every mechanism under moderate and heavy churn with lossy transfers and
// retries enabled: the fail_transfer -> backoff -> retry_transfer window
// interleaved with churn is exactly the accounting surface the auditor
// exists for. Zero violations expected.
TEST(Auditor, ChurnRetryMatrixRunsWithZeroViolations) {
  for (Algorithm algo :
       {Algorithm::kReciprocity, Algorithm::kTChain, Algorithm::kBitTorrent,
        Algorithm::kFairTorrent, Algorithm::kReputation,
        Algorithm::kAltruism}) {
    for (int heavy = 0; heavy < 2; ++heavy) {
      auto config = audit_config(algo, /*seed=*/31 + heavy);
      config.faults = heavy ? heavy_churn() : moderate_churn();
      config.faults.transfer_loss_rate = 0.10;
      config.faults.transfer_stall_rate = 0.05;
      config.faults.stall_timeout = 20.0;
      SCOPED_TRACE(core::to_string(algo) +
                   (heavy ? " / heavy churn" : " / moderate churn"));
      EXPECT_NO_THROW(run_with(config));
    }
  }
}

TEST(Auditor, SeederOutagesAuditClean) {
  auto config = audit_config(Algorithm::kBitTorrent, /*seed=*/43);
  config.faults = moderate_churn();
  config.faults.transfer_loss_rate = 0.10;
  config.faults.seeder_uptime = 60.0;
  config.faults.seeder_downtime = 15.0;
  EXPECT_NO_THROW(run_with(config));
}

// --- corruption detection --------------------------------------------------

// Observer that sabotages swarm state mid-run through a non-const backdoor,
// to prove the auditor actually trips on real corruption.
class Saboteur : public SwarmObserver {
 public:
  enum class Mode { kLeakSlot, kPhantomPending };
  Saboteur(Swarm* target, Mode mode) : target_(target), mode_(mode) {}

  void on_transfer(const Swarm&, const Transfer& t) override {
    if (done_) return;
    if (mode_ == Mode::kLeakSlot) {
      done_ = true;
      ++target_->peer(t.from).busy_slots();  // a decrement was "forgotten"
    } else {
      // A reservation appears out of nowhere (no in-flight transfer).
      // Corrupt the downloader: unlike the uploader (often the seeder,
      // whose unavailable set is already full), it still has free pieces.
      Peer p = target_->peer(t.to);
      for (PieceId piece = 0; piece < p.pending().size(); ++piece) {
        if (!p.unavailable().has(piece)) {
          p.pending().add(piece);
          p.unavailable().add(piece);
          done_ = true;
          break;
        }
      }
    }
  }

 private:
  Swarm* target_;
  Mode mode_;
  bool done_ = false;
};

TEST(Auditor, DetectsLeakedUploadSlot) {
  if (!kAuditCompiledIn) GTEST_SKIP() << "needs -DCOOPNET_AUDIT=ON";
  auto config = audit_config(Algorithm::kAltruism);
  Swarm swarm(config, strategy::make_strategy(config.algorithm));
  Saboteur saboteur(&swarm, Saboteur::Mode::kLeakSlot);
  swarm.set_observer(&saboteur);
  try {
    swarm.run();
    FAIL() << "corrupted busy_slots was not detected";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.invariant(), "busy-slots");
    EXPECT_NE(v.peer(), kNoPeer);
    EXPECT_GE(v.time(), 0.0);
    EXPECT_GT(v.events_processed(), 0u);
    EXPECT_FALSE(v.trail().empty());
    // The what() message carries the full structured diagnostic.
    EXPECT_NE(std::string(v.what()).find("busy-slots"), std::string::npos);
    EXPECT_NE(std::string(v.what()).find("recent events"),
              std::string::npos);
  }
}

TEST(Auditor, DetectsPhantomReservation) {
  if (!kAuditCompiledIn) GTEST_SKIP() << "needs -DCOOPNET_AUDIT=ON";
  auto config = audit_config(Algorithm::kAltruism);
  Swarm swarm(config, strategy::make_strategy(config.algorithm));
  Saboteur saboteur(&swarm, Saboteur::Mode::kPhantomPending);
  swarm.set_observer(&saboteur);
  try {
    swarm.run();
    FAIL() << "phantom pending reservation was not detected";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.invariant(), "pending-reservation");
  }
}

// Audited runs are pure observation: enabling/disabling the auditor (or
// thinning its cadence) must not change the simulation's outcome.
TEST(Auditor, AuditingDoesNotPerturbTheRun) {
  auto config = audit_config(Algorithm::kBitTorrent, /*seed=*/91);
  config.faults = moderate_churn();
  config.faults.transfer_loss_rate = 0.10;

  config.audit_every = 1;
  auto audited = run_with(config);
  config.audit_every = 0;
  auto bare = run_with(config);

  EXPECT_EQ(audited->engine().events_processed(),
            bare->engine().events_processed());
  EXPECT_EQ(audited->engine().now(), bare->engine().now());
  EXPECT_EQ(audited->fault_stats().goodput_bytes,
            bare->fault_stats().goodput_bytes);
  EXPECT_EQ(audited->fault_stats().offered_bytes,
            bare->fault_stats().offered_bytes);
  for (PeerId id = 0; id < static_cast<PeerId>(audited->leechers()); ++id) {
    EXPECT_EQ(audited->peer(id).finish_time(), bare->peer(id).finish_time())
        << "peer " << id;
  }
}

}  // namespace
}  // namespace coopnet::sim
