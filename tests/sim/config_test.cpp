#include "sim/config.h"

#include <gtest/gtest.h>

#include <limits>

namespace coopnet::sim {
namespace {

TEST(SwarmConfig, DefaultsAreValid) {
  SwarmConfig c;
  EXPECT_NO_THROW(c.validate());
}

TEST(SwarmConfig, PieceCountRoundsUp) {
  SwarmConfig c;
  c.file_bytes = 1000;
  c.piece_bytes = 300;
  EXPECT_EQ(c.piece_count(), 4u);
  c.file_bytes = 900;
  EXPECT_EQ(c.piece_count(), 3u);
}

TEST(SwarmConfig, FreeRiderCountFloors) {
  SwarmConfig c;
  c.n_peers = 10;
  c.free_rider_fraction = 0.25;
  EXPECT_EQ(c.free_rider_count(), 2u);
  c.free_rider_fraction = 0.0;
  EXPECT_EQ(c.free_rider_count(), 0u);
}

TEST(SwarmConfig, SmallPresetMatchesScale) {
  const auto c = SwarmConfig::small(core::Algorithm::kAltruism, 9);
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.algorithm, core::Algorithm::kAltruism);
  EXPECT_EQ(c.seed, 9u);
  EXPECT_EQ(c.n_peers, 60u);
  EXPECT_EQ(c.piece_count(), 64u);  // 8 MB / 128 KB
}

TEST(SwarmConfig, PaperScalePresetMatchesSectionVA) {
  const auto c = SwarmConfig::paper_scale(core::Algorithm::kTChain);
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.n_peers, 1000u);                      // flash crowd of 1000
  EXPECT_EQ(c.file_bytes, 128LL * 1024 * 1024);     // 128 MB file
  EXPECT_EQ(c.piece_count(), 512u);
  EXPECT_EQ(c.flash_crowd_window, 10.0);            // arrivals in first 10 s
}

TEST(SwarmConfig, ValidateCatchesBadValues) {
  auto bad = [](auto mutate) {
    SwarmConfig c;
    mutate(c);
    EXPECT_THROW(c.validate(), std::invalid_argument);
  };
  bad([](SwarmConfig& c) { c.n_peers = 1; });
  bad([](SwarmConfig& c) { c.free_rider_fraction = 1.0; });
  bad([](SwarmConfig& c) { c.free_rider_fraction = -0.1; });
  bad([](SwarmConfig& c) { c.piece_bytes = 0; });
  bad([](SwarmConfig& c) { c.piece_bytes = c.file_bytes + 1; });
  bad([](SwarmConfig& c) { c.seeder_capacity = 0.0; });
  bad([](SwarmConfig& c) { c.upload_slots = 0; });
  bad([](SwarmConfig& c) { c.rechoke_interval = 0.0; });
  bad([](SwarmConfig& c) { c.retry_interval = -1.0; });
  bad([](SwarmConfig& c) { c.optimistic_rounds = 0; });
  bad([](SwarmConfig& c) { c.alpha_r = 1.5; });
  bad([](SwarmConfig& c) { c.tchain_grace = 0.0; });
  bad([](SwarmConfig& c) { c.tchain_backlog = -1; });
  bad([](SwarmConfig& c) { c.max_time = 0.0; });
  bad([](SwarmConfig& c) { c.flash_crowd_window = -1.0; });
  bad([](SwarmConfig& c) { c.attack.whitewash_interval = 0.0; });
  bad([](SwarmConfig& c) { c.attack.sybil_interval = -5.0; });
  bad([](SwarmConfig& c) { c.attack.sybil_rate = -1.0; });
  bad([](SwarmConfig& c) { c.faults.transfer_loss_rate = 1.0; });
  bad([](SwarmConfig& c) { c.faults.churn_rate = -0.1; });
}

TEST(SwarmConfig, ValidateCatchesBadAttackTimers) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto bad = [](auto mutate) {
    SwarmConfig c;
    mutate(c);
    EXPECT_THROW(c.validate(), std::invalid_argument);
  };
  // A non-positive or non-finite interval would wedge (or never fire) the
  // attack timers; both must be rejected whenever the attack is enabled.
  bad([](SwarmConfig& c) {
    c.attack.whitewashing = true;
    c.attack.whitewash_interval = 0.0;
  });
  bad([](SwarmConfig& c) {
    c.attack.whitewashing = true;
    c.attack.whitewash_interval = -10.0;
  });
  bad([nan](SwarmConfig& c) {
    c.attack.whitewashing = true;
    c.attack.whitewash_interval = nan;
  });
  bad([](SwarmConfig& c) {
    c.attack.sybil_praise = true;
    c.attack.sybil_interval = 0.0;
  });
  bad([nan](SwarmConfig& c) {
    c.attack.sybil_praise = true;
    c.attack.sybil_interval = nan;
  });
  bad([nan](SwarmConfig& c) {
    c.attack.sybil_praise = true;
    c.attack.sybil_rate = nan;
  });
  // Positive, finite timers validate with the attacks on.
  SwarmConfig ok;
  ok.attack.whitewashing = true;
  ok.attack.sybil_praise = true;
  ok.attack.whitewash_interval = 50.0;
  ok.attack.sybil_interval = 25.0;
  EXPECT_NO_THROW(ok.validate());
}

}  // namespace
}  // namespace coopnet::sim
