// Differential test: the indexed 4-ary heap engine (sim/engine.h) against
// the seed std::priority_queue model (sim/reference_engine.h), driven
// side-by-side through randomized schedule/schedule_at/run/run_until/stop/
// reset_stop sequences. The engines must agree on everything observable:
// pop order (via a shared label log), the clock, pending counts, and
// events_processed -- including same-time ties, events scheduled from
// inside events, and stop() raised mid-run.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/reference_engine.h"
#include "util/rng.h"

namespace coopnet::sim {
namespace {

// One operation of the randomized schedule; both engines replay the same
// tape so their callback side effects are structurally identical.
struct Op {
  enum class Kind {
    kSchedule,     // relative delay
    kScheduleAt,   // absolute time (>= now at execution)
    kNested,       // event that schedules two more events when it fires
    kStopper,      // event that calls stop() when it fires
    kRun,          // run()
    kRunUntil,     // run_until(deadline)
    kResetStop,    // reset_stop()
  };
  Kind kind;
  double a = 0.0;  // delay / absolute offset / deadline
  double b = 0.0;  // nested: inner delays
  int label = 0;
};

std::vector<Op> random_tape(std::uint64_t seed, std::size_t n_ops) {
  util::Rng rng(seed);
  std::vector<Op> tape;
  tape.reserve(n_ops);
  int label = 0;
  for (std::size_t i = 0; i < n_ops; ++i) {
    Op op;
    const std::uint64_t k = rng.uniform_u64(16);
    if (k < 6) {
      op.kind = Op::Kind::kSchedule;
      // Coarse quantization forces plenty of exact same-time ties.
      op.a = static_cast<double>(rng.uniform_u64(8));
    } else if (k < 8) {
      op.kind = Op::Kind::kScheduleAt;
      op.a = static_cast<double>(rng.uniform_u64(12));
    } else if (k < 10) {
      op.kind = Op::Kind::kNested;
      op.a = static_cast<double>(rng.uniform_u64(6));
      op.b = static_cast<double>(rng.uniform_u64(4));
    } else if (k < 11) {
      op.kind = Op::Kind::kStopper;
      op.a = static_cast<double>(rng.uniform_u64(6));
    } else if (k < 13) {
      op.kind = Op::Kind::kRun;
    } else if (k < 15) {
      op.kind = Op::Kind::kRunUntil;
      op.a = static_cast<double>(rng.uniform_u64(20));
    } else {
      op.kind = Op::Kind::kResetStop;
    }
    op.label = label++;
    tape.push_back(op);
  }
  return tape;
}

// Replays the tape against any engine with the SimEngine interface,
// recording fired-event labels, clocks, and counters into a transcript.
template <typename Engine>
std::vector<std::string> replay(const std::vector<Op>& tape) {
  Engine engine;
  std::vector<std::string> transcript;
  auto note = [&transcript, &engine](const std::string& what) {
    transcript.push_back(what + " now=" + std::to_string(engine.now()) +
                         " pending=" + std::to_string(engine.pending()) +
                         " processed=" +
                         std::to_string(engine.events_processed()) +
                         (engine.stopped() ? " stopped" : ""));
  };
  for (const Op& op : tape) {
    const std::string tag = std::to_string(op.label);
    switch (op.kind) {
      case Op::Kind::kSchedule:
        engine.schedule(op.a, [&note, tag] { note("fire " + tag); });
        break;
      case Op::Kind::kScheduleAt:
        engine.schedule_at(engine.now() + op.a,
                           [&note, tag] { note("fire " + tag); });
        break;
      case Op::Kind::kNested: {
        const double inner = op.b;
        engine.schedule(op.a, [&note, &engine, tag, inner] {
          note("fire " + tag);
          engine.schedule(inner, [&note, tag] { note("inner1 " + tag); });
          engine.schedule(inner + 1.0,
                          [&note, tag] { note("inner2 " + tag); });
        });
        break;
      }
      case Op::Kind::kStopper:
        engine.schedule(op.a, [&note, &engine, tag] {
          note("stop " + tag);
          engine.stop();
        });
        break;
      case Op::Kind::kRun:
        engine.run();
        note("ran");
        break;
      case Op::Kind::kRunUntil:
        engine.run_until(engine.now() + op.a);
        note("ran-until");
        break;
      case Op::Kind::kResetStop:
        engine.reset_stop();
        break;
    }
  }
  engine.reset_stop();
  engine.run();
  note("drained");
  return transcript;
}

TEST(EngineDifferential, RandomTapesMatchReferenceModel) {
  // ~10k operations across seeds; every transcript line must match, which
  // pins pop order, tie-breaks, clock movement, and the counters.
  constexpr std::size_t kSeeds = 20;
  constexpr std::size_t kOpsPerSeed = 500;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto tape = random_tape(seed, kOpsPerSeed);
    const auto optimized = replay<SimEngine>(tape);
    const auto reference = replay<ReferenceEngine>(tape);
    ASSERT_EQ(optimized.size(), reference.size()) << "seed " << seed;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(optimized[i], reference[i])
          << "seed " << seed << " transcript line " << i;
    }
  }
}

TEST(EngineDifferential, DenseTieStorm) {
  // All events at one timestamp: order must be pure scheduling order, in
  // both engines, even when events keep piling onto the same instant.
  auto storm = [](auto&& engine) {
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      engine.schedule(1.0, [&order, &engine, i] {
        order.push_back(i);
        if (i < 50) {
          engine.schedule(0.0, [&order, i] { order.push_back(1000 + i); });
        }
      });
    }
    engine.run();
    return order;
  };
  SimEngine optimized;
  ReferenceEngine reference;
  EXPECT_EQ(storm(optimized), storm(reference));
}

TEST(EngineDifferential, InterleavedRunUntilWindows) {
  auto windows = [](auto&& engine) {
    std::vector<std::pair<int, double>> fired;
    util::Rng rng(99);
    for (int i = 0; i < 200; ++i) {
      engine.schedule_at(static_cast<double>(rng.uniform_u64(50)),
                         [&fired, &engine, i] {
                           fired.push_back({i, engine.now()});
                         });
    }
    for (double t = 5.0; t <= 60.0; t += 5.0) {
      engine.run_until(t);
      fired.push_back({-1, engine.now()});
    }
    return fired;
  };
  SimEngine optimized;
  ReferenceEngine reference;
  EXPECT_EQ(windows(optimized), windows(reference));
}

}  // namespace
}  // namespace coopnet::sim
