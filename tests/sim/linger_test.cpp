// Tests for post-completion seeding (linger_time).
#include <gtest/gtest.h>

#include "exp/runner.h"
#include "sim/swarm.h"
#include "strategy/factory.h"

namespace coopnet::sim {
namespace {

using core::Algorithm;

SwarmConfig linger_config(Algorithm algo, double linger,
                          std::uint64_t seed = 71) {
  auto config = SwarmConfig::small(algo, seed);
  config.n_peers = 50;
  config.linger_time = linger;
  config.max_time = 3000.0;
  return config;
}

TEST(Linger, FinishedPeersKeepUploading) {
  auto config = linger_config(Algorithm::kBitTorrent, 30.0);
  Swarm s(config, strategy::make_strategy(config.algorithm));
  // Snapshot uploads at finish via the observer.
  struct Snap : SwarmObserver {
    std::unordered_map<PeerId, Bytes> at_finish;
    void on_finish(const Swarm&, ConstPeer p) override {
      at_finish[p.id()] = p.uploaded_bytes();
    }
  } snap;
  s.set_observer(&snap);
  s.run();
  std::size_t post_finish_uploaders = 0;
  for (PeerId i = 0; i < s.leechers(); ++i) {
    auto it = snap.at_finish.find(i);
    if (it != snap.at_finish.end() &&
        s.peer(i).uploaded_bytes() > it->second) {
      ++post_finish_uploaders;
    }
  }
  // Early finishers had needy neighbors left to seed.
  EXPECT_GT(post_finish_uploaders, 0u);
}

TEST(Linger, ImprovesOrMatchesCompletionTimes) {
  for (Algorithm algo : {Algorithm::kBitTorrent, Algorithm::kFairTorrent}) {
    const auto without =
        exp::run_scenario(linger_config(algo, 0.0));
    const auto with_linger =
        exp::run_scenario(linger_config(algo, 60.0));
    ASSERT_FALSE(without.completion_times.empty());
    ASSERT_FALSE(with_linger.completion_times.empty());
    // Lingering seeders add capacity; the tail cannot get slower by much.
    EXPECT_LT(with_linger.completion_summary.p90,
              without.completion_summary.p90 * 1.1)
        << core::to_string(algo);
  }
}

TEST(Linger, PeersStillDepartAfterTheWindow) {
  auto config = linger_config(Algorithm::kAltruism, 5.0);
  Swarm s(config, strategy::make_strategy(config.algorithm));
  s.run();
  // Run ends when the last compliant peer finishes; anyone whose linger
  // window expired before that must have left.
  const double end = s.engine().now();
  for (PeerId i = 0; i < s.leechers(); ++i) {
    const ConstPeer p = s.peer(i);
    ASSERT_TRUE(p.finished());
    if (p.finish_time() + 5.0 < end - 1e-6) {
      EXPECT_EQ(p.state(), PeerState::kLeft) << i;
    }
  }
}

TEST(Linger, FreeRidersNeverSeedEvenAfterFinishing) {
  auto config = linger_config(Algorithm::kAltruism, 60.0);
  config.free_rider_fraction = 0.2;
  Swarm s(config, strategy::make_strategy(config.algorithm));
  s.run();
  for (PeerId i = 0; i < s.leechers(); ++i) {
    if (s.peer(i).is_free_rider()) {
      EXPECT_EQ(s.peer(i).uploaded_bytes(), 0) << i;
    }
  }
}

TEST(Linger, JainIndexReported) {
  const auto altruism =
      exp::run_scenario(linger_config(Algorithm::kAltruism, 0.0));
  const auto fairtorrent =
      exp::run_scenario(linger_config(Algorithm::kFairTorrent, 0.0));
  ASSERT_GT(altruism.download_rate_jain, 0.0);
  ASSERT_GT(fairtorrent.download_rate_jain, 0.0);
  // Altruism equalizes service across capacities; FairTorrent's service is
  // capacity-proportional, so its rate disparity is wider.
  EXPECT_GT(altruism.download_rate_jain, fairtorrent.download_rate_jain);
}

}  // namespace
}  // namespace coopnet::sim
