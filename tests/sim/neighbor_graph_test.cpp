#include "sim/neighbor_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace coopnet::sim {
namespace {

std::vector<std::vector<PeerId>> make_graph(std::size_t n,
                                            std::size_t degree,
                                            std::vector<bool> large = {},
                                            double mult = 4.0) {
  if (large.empty()) large.assign(n, false);
  util::Rng rng(11);
  NeighborGraphConfig cfg;
  cfg.degree = degree;
  cfg.large_view_multiplier = mult;
  return build_neighbor_graph(n, cfg, large, rng);
}

TEST(NeighborGraph, HasOneListPerPeerPlusSeeder) {
  const auto g = make_graph(20, 5);
  EXPECT_EQ(g.size(), 21u);
}

TEST(NeighborGraph, EveryLeecherKnowsTheSeeder) {
  const auto g = make_graph(20, 5);
  const PeerId seeder = 20;
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(std::count(g[i].begin(), g[i].end(), seeder) == 1) << i;
  }
  EXPECT_EQ(g[seeder].size(), 20u);
}

TEST(NeighborGraph, NoSelfLoopsOrDuplicates) {
  const auto g = make_graph(50, 10);
  for (std::size_t i = 0; i < 50; ++i) {
    std::set<PeerId> uniq(g[i].begin(), g[i].end());
    EXPECT_EQ(uniq.size(), g[i].size()) << "duplicates at " << i;
    EXPECT_EQ(uniq.count(static_cast<PeerId>(i)), 0u) << "self loop at " << i;
  }
}

TEST(NeighborGraph, LeecherEdgesAreSymmetric) {
  const auto g = make_graph(50, 10);
  for (std::size_t i = 0; i < 50; ++i) {
    for (PeerId j : g[i]) {
      if (j == 50) continue;  // seeder handled separately
      EXPECT_TRUE(std::count(g[j].begin(), g[j].end(),
                             static_cast<PeerId>(i)) == 1)
          << i << " -> " << j;
    }
  }
}

TEST(NeighborGraph, DegreeAtLeastRequested) {
  const auto g = make_graph(100, 10);
  for (std::size_t i = 0; i < 100; ++i) {
    // degree edges requested + seeder; symmetrization can only add more.
    EXPECT_GE(g[i].size(), 11u) << i;
  }
}

TEST(NeighborGraph, LargeViewPeersHaveInflatedDegree) {
  std::vector<bool> large(200, false);
  large[0] = true;
  const auto g = make_graph(200, 10, large, 4.0);
  // Peer 0 requested ~40 edges; a normal peer ~10 (plus incidental
  // symmetrized edges and the seeder).
  EXPECT_GE(g[0].size(), 40u);
  std::size_t normal_total = 0;
  for (std::size_t i = 1; i < 200; ++i) normal_total += g[i].size();
  const double normal_avg =
      static_cast<double>(normal_total) / 199.0;
  EXPECT_GT(static_cast<double>(g[0].size()), 1.8 * normal_avg);
}

TEST(NeighborGraph, DegreeClampsToPopulation) {
  const auto g = make_graph(5, 100);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(g[i].size(), 5u);  // 4 other leechers + seeder
  }
}

TEST(NeighborGraph, RejectsBadInput) {
  util::Rng rng(1);
  NeighborGraphConfig cfg;
  std::vector<bool> flags(5, false);
  EXPECT_THROW(build_neighbor_graph(1, cfg, {false}, rng),
               std::invalid_argument);
  EXPECT_THROW(build_neighbor_graph(5, cfg, {false, true}, rng),
               std::invalid_argument);
  cfg.degree = 0;
  EXPECT_THROW(build_neighbor_graph(5, cfg, flags, rng),
               std::invalid_argument);
  cfg.degree = 2;
  cfg.large_view_multiplier = 0.5;
  EXPECT_THROW(build_neighbor_graph(5, cfg, flags, rng),
               std::invalid_argument);
}

TEST(NeighborGraph, DeterministicGivenSeed) {
  util::Rng a(42), b(42);
  NeighborGraphConfig cfg;
  cfg.degree = 8;
  std::vector<bool> flags(30, false);
  EXPECT_EQ(build_neighbor_graph(30, cfg, flags, a),
            build_neighbor_graph(30, cfg, flags, b));
}

}  // namespace
}  // namespace coopnet::sim
