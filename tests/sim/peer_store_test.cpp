// Contract tests for the struct-of-arrays peer store: slot recycling must
// keep epoch-guarded identity (no stale-index aliasing), the active
// registry must list exactly the live peers in a deterministic order, and
// out-of-range ids must trip the debug range assert.
#include "sim/peer_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace coopnet::sim {
namespace {

constexpr PieceId kPieces = 8;

// --- slot reuse ------------------------------------------------------------

TEST(PeerStoreSlotReuse, AcquireReturnsReleasedSlotWithFreshState) {
  PeerStore store;
  store.init(4, kPieces);

  // Live a small life on peer 2: activate, accumulate state, depart.
  store.set_state(2, PeerState::kActive);
  store.kind(2) = PeerKind::kFreeRider;
  store.pieces(2).add(3);
  store.pending(2).add(5);
  store.credit_uploaded(2, 100);
  store.credit_downloaded_raw(2, 200);
  store.credit_usable_from_leechers(2, 50);
  store.received_from(2)[1] = 200;
  store.set_state(2, PeerState::kLeft);

  const std::uint32_t old_epoch = store.epoch(2);
  store.release_slot(2);
  // The epoch moves at release time: a scheduled event or cached PeerId
  // captured before the release already observes a stale incarnation,
  // whether or not the slot is ever re-acquired.
  EXPECT_GT(store.epoch(2), old_epoch);
  EXPECT_EQ(store.free_slot_count(), 1u);

  const PeerId id = store.acquire_slot();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(store.free_slot_count(), 0u);

  // The new incarnation starts from init() values...
  EXPECT_EQ(store.state(id), PeerState::kPending);
  EXPECT_EQ(store.kind(id), PeerKind::kCompliant);
  EXPECT_TRUE(store.pieces(id).empty());
  EXPECT_TRUE(store.pending(id).empty());
  EXPECT_EQ(store.uploaded_bytes(id), 0);
  EXPECT_EQ(store.downloaded_raw_bytes(id), 0);
  EXPECT_EQ(store.usable_from_leechers_bytes(id), 0);
  EXPECT_TRUE(store.received_from(id).empty());
  // ...except the epoch, which keeps counting up across lives.
  EXPECT_GT(store.epoch(id), old_epoch);
}

TEST(PeerStoreSlotReuse, AggregatesMatchPerPeerSumsAcrossRecycling) {
  PeerStore store;
  store.init(3, kPieces);
  store.kind(1) = PeerKind::kFreeRider;

  store.set_state(0, PeerState::kActive);
  store.set_state(1, PeerState::kActive);
  store.credit_uploaded(0, 1000);
  store.credit_downloaded_raw(1, 600);
  store.credit_usable_from_leechers(1, 600);

  store.set_state(1, PeerState::kLeft);
  store.release_slot(1);
  ASSERT_EQ(store.acquire_slot(), 1u);

  // The recycled peer's counters were folded out of the aggregates, so the
  // O(1) totals still equal a fresh scan of the per-peer arrays.
  Bytes uploaded = 0, raw = 0, fr_usable = 0;
  for (PeerId id = 0; id < 3; ++id) {
    uploaded += store.uploaded_bytes(id);
    raw += store.downloaded_raw_bytes(id);
    if (store.kind(id) == PeerKind::kFreeRider) {
      fr_usable += store.usable_from_leechers_bytes(id);
    }
  }
  EXPECT_EQ(store.total_uploaded_bytes(), uploaded);
  EXPECT_EQ(store.total_downloaded_raw_bytes(), raw);
  EXPECT_EQ(store.freerider_usable_bytes(), fr_usable);
}

TEST(PeerStoreSlotReuse, VersionCountersStayMonotonicAcrossLives) {
  PeerStore store;
  store.init(2, kPieces);

  // A memo stamped against the first life's versions...
  InterestMemo memo;
  memo.offer_ver = store.pieces_ver(0);
  memo.avail_ver = store.unavail_ver(0);
  memo.can_offer = true;

  store.set_state(0, PeerState::kActive);
  store.set_state(0, PeerState::kLeft);
  store.release_slot(0);
  ASSERT_EQ(store.acquire_slot(), 0u);

  // ...must never validate against the next life: both counters moved.
  EXPECT_NE(store.pieces_ver(0), memo.offer_ver);
  EXPECT_NE(store.unavail_ver(0), memo.avail_ver);
}

TEST(PeerStoreSlotReuse, AcquireFromEmptyFreeListReturnsNoPeer) {
  PeerStore store;
  store.init(2, kPieces);
  EXPECT_EQ(store.acquire_slot(), kNoPeer);
}

TEST(PeerStoreSlotReuse, LifoReuseOrderIsDeterministic) {
  PeerStore store;
  store.init(4, kPieces);
  for (PeerId id : {PeerId{0}, PeerId{1}, PeerId{2}}) {
    store.set_state(id, PeerState::kActive);
    store.set_state(id, PeerState::kLeft);
    store.release_slot(id);
  }
  EXPECT_EQ(store.acquire_slot(), 2u);
  EXPECT_EQ(store.acquire_slot(), 1u);
  EXPECT_EQ(store.acquire_slot(), 0u);
  EXPECT_EQ(store.acquire_slot(), kNoPeer);
}

// --- active registry --------------------------------------------------------

std::vector<PeerId> sorted_active(const PeerStore& store) {
  std::vector<PeerId> ids(store.active_ids().begin(),
                          store.active_ids().end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(PeerStoreActiveSet, ListsExactlyTheLivePeers) {
  PeerStore store;
  store.init(6, kPieces);

  store.set_state(1, PeerState::kActive);
  store.set_state(3, PeerState::kActive);
  store.set_state(4, PeerState::kActive);
  EXPECT_EQ(store.active_count(), 3u);
  EXPECT_EQ(sorted_active(store), (std::vector<PeerId>{1, 3, 4}));

  // Churn and departure both leave the registry; rejoining re-enters it.
  store.set_state(3, PeerState::kChurned);
  store.set_state(4, PeerState::kLeft);
  EXPECT_EQ(sorted_active(store), (std::vector<PeerId>{1}));
  store.set_state(3, PeerState::kActive);
  EXPECT_EQ(sorted_active(store), (std::vector<PeerId>{1, 3}));

  // Same-state transitions are no-ops (no duplicate registry entries).
  store.set_state(3, PeerState::kActive);
  EXPECT_EQ(store.active_count(), 2u);
}

TEST(PeerStoreActiveSet, OrderIsAFunctionOfTransitionHistory) {
  // Two stores fed the identical transition sequence must produce the
  // identical active_ids() order -- that determinism is what makes the
  // registry safe to iterate at all (commutative work only; the order
  // itself is arbitrary swap-remove order, not ascending).
  auto drive = [](PeerStore& store) {
    store.init(5, kPieces);
    for (PeerId id = 0; id < 5; ++id) store.set_state(id, PeerState::kActive);
    store.set_state(1, PeerState::kLeft);   // 4 takes position 1
    store.set_state(0, PeerState::kChurned);  // 3 takes position 0
    store.set_state(1, PeerState::kActive);   // rejoins at the back
  };
  PeerStore a, b;
  drive(a);
  drive(b);
  EXPECT_EQ(a.active_ids(), b.active_ids());
  // Spot-check the swap-remove mechanics documented above.
  EXPECT_EQ(a.active_ids(), (std::vector<PeerId>{3, 4, 2, 1}));
}

// --- debug range guard -------------------------------------------------------

TEST(PeerStoreDeathTest, OutOfRangePeerIdAssertsInDebugBuilds) {
#ifdef NDEBUG
  GTEST_SKIP() << "range asserts compile out of NDEBUG builds";
#else
  PeerStore store;
  store.init(4, kPieces);
  EXPECT_DEATH((void)store.state(4), "peer id out of range");
  EXPECT_DEATH((void)store.pieces(100), "peer id out of range");
#endif
}

}  // namespace
}  // namespace coopnet::sim
