// Randomized property test: PieceSet against a std::set<PieceId> reference
// model across thousands of random operations.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/piece_set.h"
#include "util/rng.h"

namespace coopnet::sim {
namespace {

class PieceSetModelCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PieceSetModelCheck, MatchesReferenceModel) {
  util::Rng rng(GetParam());
  const PieceId size = static_cast<PieceId>(rng.uniform_int(1, 300));
  PieceSet sut(size);
  std::set<PieceId> model;

  for (int op = 0; op < 4000; ++op) {
    const auto piece = static_cast<PieceId>(rng.uniform_u64(size));
    switch (rng.uniform_u64(5)) {
      case 0:
      case 1: {  // add
        const bool inserted = model.insert(piece).second;
        ASSERT_EQ(sut.add(piece), inserted);
        break;
      }
      case 2: {  // remove
        const bool erased = model.erase(piece) > 0;
        ASSERT_EQ(sut.remove(piece), erased);
        break;
      }
      case 3: {  // point query
        ASSERT_EQ(sut.has(piece), model.count(piece) > 0);
        break;
      }
      case 4: {  // aggregate queries
        ASSERT_EQ(sut.count(), model.size());
        ASSERT_EQ(sut.empty(), model.empty());
        ASSERT_EQ(sut.complete(), model.size() == size);
        break;
      }
    }
  }

  // Full sweep at the end.
  for (PieceId p = 0; p < size; ++p) {
    ASSERT_EQ(sut.has(p), model.count(p) > 0) << p;
  }
}

TEST_P(PieceSetModelCheck, OfferableMatchesSetDifference) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  const PieceId size = static_cast<PieceId>(rng.uniform_int(1, 300));
  PieceSet offer(size), excluded(size);
  std::set<PieceId> offer_model, excluded_model;
  for (PieceId p = 0; p < size; ++p) {
    if (rng.bernoulli(0.4)) {
      offer.add(p);
      offer_model.insert(p);
    }
    if (rng.bernoulli(0.4)) {
      excluded.add(p);
      excluded_model.insert(p);
    }
  }
  std::vector<PieceId> expected;
  for (PieceId p : offer_model) {
    if (excluded_model.count(p) == 0) expected.push_back(p);
  }
  std::vector<PieceId> actual;
  offer.for_each_offerable(excluded,
                           [&](PieceId p) { actual.push_back(p); });
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(offer.can_offer(excluded), !expected.empty());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, PieceSetModelCheck,
                         ::testing::Values(1, 2, 3, 42, 777));

}  // namespace
}  // namespace coopnet::sim
