#include "metrics/trace_log.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "metrics/run_metrics.h"
#include "sim/faults.h"
#include "strategy/factory.h"

namespace coopnet::metrics {
namespace {

sim::SwarmConfig trace_config() {
  auto config = sim::SwarmConfig::small(core::Algorithm::kAltruism, 61);
  config.n_peers = 20;
  return config;
}

TEST(TraceLog, RecordsAllEventKinds) {
  auto config = trace_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  TraceLog trace;
  swarm.set_observer(&trace);
  swarm.run();

  std::size_t transfers = 0, bootstraps = 0, finishes = 0;
  for (const auto& e : trace.events()) {
    switch (e.kind) {
      case TraceEvent::Kind::kTransfer:
        ++transfers;
        EXPECT_NE(e.from, sim::kNoPeer);
        EXPECT_NE(e.piece, sim::kNoPiece);
        EXPECT_GT(e.bytes, 0);
        break;
      case TraceEvent::Kind::kBootstrap:
        ++bootstraps;
        break;
      case TraceEvent::Kind::kFinish:
        ++finishes;
        break;
    }
  }
  EXPECT_EQ(transfers, trace.transfer_count());
  // Every leecher (including free-riderless compliant set) bootstraps and
  // finishes under altruism.
  EXPECT_EQ(bootstraps, swarm.leechers());
  EXPECT_EQ(finishes, swarm.leechers());
  // Total transferred bytes match the swarm's raw download accounting.
  sim::Bytes total = 0;
  for (const auto& e : trace.events()) total += e.bytes;
  sim::Bytes raw = 0;
  for (const auto& p : swarm.peers()) raw += p.downloaded_raw_bytes();
  EXPECT_EQ(total, raw);
}

TEST(TraceLog, EventsAreTimeOrdered) {
  auto config = trace_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  TraceLog trace;
  swarm.set_observer(&trace);
  swarm.run();
  double prev = 0.0;
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(TraceLog, TransfersCanBeDisabled) {
  auto config = trace_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  TraceLog trace(/*transfers_enabled=*/false);
  swarm.set_observer(&trace);
  swarm.run();
  EXPECT_GT(trace.transfer_count(), 0u);  // still counted
  for (const auto& e : trace.events()) {
    EXPECT_NE(e.kind, TraceEvent::Kind::kTransfer);  // but not stored
  }
}

TEST(TraceLog, ChainsToSecondObserver) {
  auto config = trace_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  TraceLog trace;
  RunMetrics run_metrics;
  run_metrics.install(swarm);   // registers itself as observer...
  swarm.set_observer(&trace);   // ...then trace takes over and chains
  trace.chain(&run_metrics);
  swarm.run();
  EXPECT_EQ(run_metrics.completion_times().size(), swarm.leechers());
  EXPECT_GT(trace.transfer_count(), 0u);
}

TEST(TraceLog, ForPeerFiltersBothDirections) {
  auto config = trace_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  TraceLog trace;
  swarm.set_observer(&trace);
  swarm.run();
  const auto events = trace.for_peer(0);
  EXPECT_FALSE(events.empty());
  for (const auto& e : events) {
    EXPECT_TRUE(e.peer == 0 || e.from == 0);
  }
}

// Golden CSV: times must round-trip at full double precision. The old
// 6-significant-digit default formatted t = 100000.0625 as "100000", so
// sub-second spacing late in a long run vanished and the CSV could no
// longer reproduce event order.
TEST(TraceLog, CsvKeepsSubSecondPrecisionOnLongRuns) {
  TraceLog trace;
  trace.append({TraceEvent::Kind::kTransfer, 100000.0625, 4, 17, 3,
                131072, false});
  trace.append({TraceEvent::Kind::kTransfer, 100000.125, 4, 9, 5, 131072,
                true});
  trace.append({TraceEvent::Kind::kBootstrap, 0.5, 4, sim::kNoPeer,
                sim::kNoPiece, 0, false});
  trace.append({TraceEvent::Kind::kFinish, 123456.78125, 4, sim::kNoPeer,
                sim::kNoPiece, 0, false});
  EXPECT_EQ(trace.to_csv(),
            "kind,time,peer,from,piece,bytes,locked\n"
            "transfer,100000.0625,4,17,3,131072,0\n"
            "transfer,100000.125,4,9,5,131072,1\n"
            "bootstrap,0.5,4,-,-,0,0\n"
            "finish,123456.78125,4,-,-,0,0\n");
}

TEST(TraceLog, CsvTimesParseBackExactly) {
  auto config = trace_config();
  config.max_time = 200000.0;
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  TraceLog trace;
  swarm.set_observer(&trace);
  swarm.run();
  const std::string csv = trace.to_csv();
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);  // header
  std::size_t i = 0;
  while (std::getline(in, line)) {
    const auto a = line.find(',');
    const auto b = line.find(',', a + 1);
    ASSERT_NE(b, std::string::npos);
    const double parsed = std::stod(line.substr(a + 1, b - a - 1));
    ASSERT_LT(i, trace.events().size());
    EXPECT_EQ(parsed, trace.events()[i].time) << "line " << i;
    ++i;
  }
  EXPECT_EQ(i, trace.events().size());
}

// A counting observer for exactly-once delivery checks.
struct CountingObserver : sim::SwarmObserver {
  std::size_t transfers = 0, bootstraps = 0, finishes = 0;
  sim::Bytes bytes = 0;
  void on_transfer(const sim::Swarm&, const sim::Transfer& t) override {
    ++transfers;
    bytes += t.bytes;
  }
  void on_bootstrap(const sim::Swarm&, sim::ConstPeer) override {
    ++bootstraps;
  }
  void on_finish(const sim::Swarm&, sim::ConstPeer) override {
    ++finishes;
  }
};

// chain() must deliver every event exactly once to both observers --
// including under faults, where retries, churn and vanished uploaders
// produce completion events that must NOT be double-reported.
TEST(TraceLog, ChainDeliversEveryEventExactlyOnceUnderFaults) {
  auto config = trace_config();
  config.faults = sim::moderate_churn();
  config.faults.transfer_loss_rate = 0.10;
  config.faults.transfer_stall_rate = 0.05;
  config.faults.stall_timeout = 20.0;
  config.max_time = 20000.0;
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  TraceLog trace;
  CountingObserver counter;
  trace.chain(&counter);
  swarm.set_observer(&trace);
  swarm.run();

  std::size_t transfers = 0, bootstraps = 0, finishes = 0;
  sim::Bytes bytes = 0;
  for (const auto& e : trace.events()) {
    switch (e.kind) {
      case TraceEvent::Kind::kTransfer:
        ++transfers;
        bytes += e.bytes;
        break;
      case TraceEvent::Kind::kBootstrap:
        ++bootstraps;
        break;
      case TraceEvent::Kind::kFinish:
        ++finishes;
        break;
    }
  }
  ASSERT_GT(counter.transfers, 0u);
  EXPECT_EQ(counter.transfers, transfers);
  EXPECT_EQ(counter.transfers, trace.transfer_count());
  EXPECT_EQ(counter.bootstraps, bootstraps);
  EXPECT_EQ(counter.finishes, finishes);
  EXPECT_EQ(counter.bytes, bytes);
  // Delivered payload seen by observers matches the swarm's goodput ledger.
  EXPECT_EQ(counter.bytes, swarm.fault_stats().goodput_bytes);
}

TEST(TraceLog, CsvHasHeaderAndOneLinePerEvent) {
  auto config = trace_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  TraceLog trace;
  swarm.set_observer(&trace);
  swarm.run();
  const std::string csv = trace.to_csv();
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), trace.events().size() + 1);
  EXPECT_EQ(csv.rfind("kind,time,peer,from,piece,bytes,locked\n", 0), 0u);
}

}  // namespace
}  // namespace coopnet::metrics
