#include "metrics/trace_log.h"

#include <gtest/gtest.h>

#include "metrics/run_metrics.h"
#include "strategy/factory.h"

namespace coopnet::metrics {
namespace {

sim::SwarmConfig trace_config() {
  auto config = sim::SwarmConfig::small(core::Algorithm::kAltruism, 61);
  config.n_peers = 20;
  return config;
}

TEST(TraceLog, RecordsAllEventKinds) {
  auto config = trace_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  TraceLog trace;
  swarm.set_observer(&trace);
  swarm.run();

  std::size_t transfers = 0, bootstraps = 0, finishes = 0;
  for (const auto& e : trace.events()) {
    switch (e.kind) {
      case TraceEvent::Kind::kTransfer:
        ++transfers;
        EXPECT_NE(e.from, sim::kNoPeer);
        EXPECT_NE(e.piece, sim::kNoPiece);
        EXPECT_GT(e.bytes, 0);
        break;
      case TraceEvent::Kind::kBootstrap:
        ++bootstraps;
        break;
      case TraceEvent::Kind::kFinish:
        ++finishes;
        break;
    }
  }
  EXPECT_EQ(transfers, trace.transfer_count());
  // Every leecher (including free-riderless compliant set) bootstraps and
  // finishes under altruism.
  EXPECT_EQ(bootstraps, swarm.leechers());
  EXPECT_EQ(finishes, swarm.leechers());
  // Total transferred bytes match the swarm's raw download accounting.
  sim::Bytes total = 0;
  for (const auto& e : trace.events()) total += e.bytes;
  sim::Bytes raw = 0;
  for (const auto& p : swarm.all_peers()) raw += p.downloaded_raw_bytes;
  EXPECT_EQ(total, raw);
}

TEST(TraceLog, EventsAreTimeOrdered) {
  auto config = trace_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  TraceLog trace;
  swarm.set_observer(&trace);
  swarm.run();
  double prev = 0.0;
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(TraceLog, TransfersCanBeDisabled) {
  auto config = trace_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  TraceLog trace(/*transfers_enabled=*/false);
  swarm.set_observer(&trace);
  swarm.run();
  EXPECT_GT(trace.transfer_count(), 0u);  // still counted
  for (const auto& e : trace.events()) {
    EXPECT_NE(e.kind, TraceEvent::Kind::kTransfer);  // but not stored
  }
}

TEST(TraceLog, ChainsToSecondObserver) {
  auto config = trace_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  TraceLog trace;
  RunMetrics run_metrics;
  run_metrics.install(swarm);   // registers itself as observer...
  swarm.set_observer(&trace);   // ...then trace takes over and chains
  trace.chain(&run_metrics);
  swarm.run();
  EXPECT_EQ(run_metrics.completion_times().size(), swarm.leechers());
  EXPECT_GT(trace.transfer_count(), 0u);
}

TEST(TraceLog, ForPeerFiltersBothDirections) {
  auto config = trace_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  TraceLog trace;
  swarm.set_observer(&trace);
  swarm.run();
  const auto events = trace.for_peer(0);
  EXPECT_FALSE(events.empty());
  for (const auto& e : events) {
    EXPECT_TRUE(e.peer == 0 || e.from == 0);
  }
}

TEST(TraceLog, CsvHasHeaderAndOneLinePerEvent) {
  auto config = trace_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  TraceLog trace;
  swarm.set_observer(&trace);
  swarm.run();
  const std::string csv = trace.to_csv();
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), trace.events().size() + 1);
  EXPECT_EQ(csv.rfind("kind,time,peer,from,piece,bytes,locked\n", 0), 0u);
}

}  // namespace
}  // namespace coopnet::metrics
