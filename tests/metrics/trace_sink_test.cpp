// Streaming JSONL trace sink: line format, per-event streaming, chaining,
// file output, and agreement with the in-memory TraceLog.
#include "metrics/trace_sink.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/run_metrics.h"
#include "metrics/trace_log.h"
#include "sim/faults.h"
#include "strategy/factory.h"

namespace coopnet::metrics {
namespace {

sim::SwarmConfig sink_config() {
  auto config = sim::SwarmConfig::small(core::Algorithm::kAltruism, 61);
  config.n_peers = 20;
  return config;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(TraceSink, WritesOneJsonObjectPerLine) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.write({TraceEvent::Kind::kTransfer, 12.5, 4, 17, 3, 131072, false});
  sink.write({TraceEvent::Kind::kTransfer, 100000.0625, 4, 9, 5, 131072,
              true});
  sink.write({TraceEvent::Kind::kBootstrap, 0.5, 4, sim::kNoPeer,
              sim::kNoPiece, 0, false});
  sink.write({TraceEvent::Kind::kFinish, 123456.78125, 4, sim::kNoPeer,
              sim::kNoPiece, 0, false});
  EXPECT_EQ(sink.events_written(), 4u);
  EXPECT_EQ(
      out.str(),
      "{\"kind\":\"transfer\",\"time\":12.5,\"peer\":4,\"from\":17,"
      "\"piece\":3,\"bytes\":131072,\"locked\":false}\n"
      "{\"kind\":\"transfer\",\"time\":100000.0625,\"peer\":4,\"from\":9,"
      "\"piece\":5,\"bytes\":131072,\"locked\":true}\n"
      "{\"kind\":\"bootstrap\",\"time\":0.5,\"peer\":4}\n"
      "{\"kind\":\"finish\",\"time\":123456.78125,\"peer\":4}\n");
}

TEST(TraceSink, StreamsEveryEventOfARun) {
  auto config = sink_config();
  // One run observed by both the sink and the in-memory log: they must
  // agree event-for-event.
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  std::ostringstream out;
  TraceSink sink(out);
  TraceLog log;
  sink.chain(&log);
  swarm.set_observer(&sink);
  swarm.run();

  const auto lines = lines_of(out.str());
  EXPECT_EQ(sink.events_written(), log.events().size());
  ASSERT_EQ(lines.size(), log.events().size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].front(), '{');
    EXPECT_EQ(lines[i].back(), '}');
    const char* kind =
        log.events()[i].kind == TraceEvent::Kind::kTransfer ? "transfer"
        : log.events()[i].kind == TraceEvent::Kind::kBootstrap
            ? "bootstrap"
            : "finish";
    EXPECT_NE(lines[i].find(std::string("\"kind\":\"") + kind + "\""),
              std::string::npos)
        << "line " << i;
  }
}

TEST(TraceSink, ChainsToRunMetricsUnderFaults) {
  auto config = sink_config();
  config.faults = sim::moderate_churn();
  config.faults.transfer_loss_rate = 0.10;
  config.max_time = 20000.0;
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  std::ostringstream out;
  TraceSink sink(out);
  RunMetrics run_metrics;
  run_metrics.install(swarm);
  sink.chain(&run_metrics);
  swarm.set_observer(&sink);
  swarm.run();
  // The chained collector saw the finishes the sink wrote.
  std::size_t finish_lines = 0;
  for (const auto& line : lines_of(out.str())) {
    if (line.find("\"kind\":\"finish\"") != std::string::npos) {
      ++finish_lines;
    }
  }
  EXPECT_EQ(finish_lines, run_metrics.completion_times().size());
  EXPECT_GT(finish_lines, 0u);
}

TEST(TraceSink, TransfersCanBeDisabled) {
  auto config = sink_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  std::ostringstream out;
  TraceSink sink(out, /*transfers_enabled=*/false);
  swarm.set_observer(&sink);
  swarm.run();
  EXPECT_GT(sink.events_written(), 0u);
  for (const auto& line : lines_of(out.str())) {
    EXPECT_EQ(line.find("\"kind\":\"transfer\""), std::string::npos);
  }
}

TEST(TraceSink, WritesToFile) {
  const std::string path =
      ::testing::TempDir() + "coopnet_trace_sink_test.jsonl";
  auto config = sink_config();
  {
    sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
    TraceSink sink(path);
    swarm.set_observer(&sink);
    swarm.run();
    EXPECT_GT(sink.events_written(), 0u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::size_t count = 0;
  std::string line;
  while (std::getline(in, line)) ++count;
  EXPECT_GT(count, 0u);
  std::remove(path.c_str());
}

TEST(TraceSink, ThrowsOnUnopenablePath) {
  EXPECT_THROW(TraceSink("/nonexistent-dir/trace.jsonl"),
               std::runtime_error);
}

}  // namespace
}  // namespace coopnet::metrics
