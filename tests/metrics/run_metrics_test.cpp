#include "metrics/run_metrics.h"

#include <gtest/gtest.h>

#include <memory>

#include "metrics/report.h"
#include "sim/swarm.h"
#include "strategy/factory.h"

namespace coopnet::metrics {
namespace {

using core::Algorithm;
using sim::Swarm;
using sim::SwarmConfig;

SwarmConfig config_for(Algorithm algo, double fr = 0.0) {
  SwarmConfig c;
  c.algorithm = algo;
  c.n_peers = 30;
  c.free_rider_fraction = fr;
  c.file_bytes = 16 * 64 * 1024;
  c.piece_bytes = 64 * 1024;
  c.capacities = core::CapacityDistribution::homogeneous(128.0 * 1024);
  c.seeder_capacity = 256.0 * 1024;
  c.graph.degree = 29;
  c.flash_crowd_window = 2.0;
  c.max_time = 600.0;
  c.seed = 21;
  return c;
}

TEST(RunMetrics, CollectsCompletionAndBootstrapForCompliantOnly) {
  auto config = config_for(Algorithm::kAltruism, 0.2);
  Swarm s(config, strategy::make_strategy(config.algorithm));
  RunMetrics m;
  m.install(s);
  s.run();
  EXPECT_EQ(m.compliant_population(), 24u);
  EXPECT_EQ(m.freerider_population(), 6u);
  EXPECT_EQ(m.completion_times().size(), 24u);
  EXPECT_EQ(m.bootstrap_times().size(), 24u);
  for (double t : m.completion_times()) EXPECT_GT(t, 0.0);
  for (double t : m.bootstrap_times()) EXPECT_GE(t, 0.0);
}

TEST(RunMetrics, DoubleInstallThrows) {
  auto config = config_for(Algorithm::kAltruism);
  Swarm s(config, strategy::make_strategy(config.algorithm));
  RunMetrics m;
  m.install(s);
  EXPECT_THROW(m.install(s), std::logic_error);
}

TEST(RunMetrics, BadSampleIntervalThrows) {
  EXPECT_THROW(RunMetrics(0.0), std::invalid_argument);
  EXPECT_THROW(RunMetrics(-1.0), std::invalid_argument);
}

TEST(RunMetrics, FairnessSeriesIsSampled) {
  auto config = config_for(Algorithm::kAltruism);
  Swarm s(config, strategy::make_strategy(config.algorithm));
  RunMetrics m(5.0);
  m.install(s);
  s.run();
  EXPECT_GE(m.fairness_series().size(), 2u);
  for (const auto& p : m.fairness_series().points()) {
    EXPECT_GE(p.value, 0.0);
  }
}

TEST(CurrentFairness, UndefinedBeforeAnyDownloads) {
  auto config = config_for(Algorithm::kAltruism);
  Swarm s(config, strategy::make_strategy(config.algorithm));
  EXPECT_EQ(current_fairness(s), -1.0);
  EXPECT_EQ(current_fairness_F(s), -1.0);
  EXPECT_EQ(current_susceptibility(s), 0.0);
}

TEST(Susceptibility, ZeroWithoutFreeRiders) {
  auto config = config_for(Algorithm::kAltruism);
  Swarm s(config, strategy::make_strategy(config.algorithm));
  RunMetrics m;
  m.install(s);
  s.run();
  EXPECT_EQ(current_susceptibility(s), 0.0);
}

TEST(Susceptibility, TracksFreeRiderShareUnderAltruism) {
  auto config = config_for(Algorithm::kAltruism, 0.2);
  Swarm s(config, strategy::make_strategy(config.algorithm));
  RunMetrics m;
  m.install(s);
  s.run();
  // Altruism hands free-riders roughly their population share.
  EXPECT_NEAR(current_susceptibility(s), 0.2, 0.08);
}

TEST(Report, BuildsConsistentSummary) {
  auto config = config_for(Algorithm::kAltruism, 0.2);
  Swarm s(config, strategy::make_strategy(config.algorithm));
  RunMetrics m;
  m.install(s);
  s.run();
  const RunReport r = build_report(s, m);
  EXPECT_EQ(r.algorithm, Algorithm::kAltruism);
  EXPECT_EQ(r.compliant_population, 24u);
  EXPECT_EQ(r.freerider_population, 6u);
  EXPECT_NEAR(r.completed_fraction, 1.0, 1e-12);
  EXPECT_NEAR(r.bootstrapped_fraction, 1.0, 1e-12);
  EXPECT_GT(r.completion_summary.mean, 0.0);
  EXPECT_GE(r.completion_summary.max, r.completion_summary.median);
  EXPECT_GT(r.total_uploaded_bytes, 0);
  EXPECT_GE(r.total_uploaded_bytes, r.total_downloaded_raw_bytes);
  EXPECT_GT(r.susceptibility, 0.0);
}

TEST(Report, CdfsCoverPopulation) {
  auto config = config_for(Algorithm::kAltruism);
  Swarm s(config, strategy::make_strategy(config.algorithm));
  RunMetrics m;
  m.install(s);
  s.run();
  const RunReport r = build_report(s, m);
  const auto completion = completion_cdf(r);
  ASSERT_FALSE(completion.empty());
  EXPECT_NEAR(completion.back().fraction, 1.0, 1e-12);
  const auto bootstrap = bootstrap_cdf(r);
  ASSERT_FALSE(bootstrap.empty());
  EXPECT_NEAR(bootstrap.back().fraction, 1.0, 1e-12);
  EXPECT_LE(bootstrap.back().x, completion.back().x);
}

TEST(Report, SummaryStringMentionsKeyFacts) {
  auto config = config_for(Algorithm::kAltruism, 0.2);
  Swarm s(config, strategy::make_strategy(config.algorithm));
  RunMetrics m;
  m.install(s);
  s.run();
  const std::string text = summarize_report(build_report(s, m));
  EXPECT_NE(text.find("Altruism"), std::string::npos);
  EXPECT_NE(text.find("24/24"), std::string::npos);
  EXPECT_NE(text.find("susceptibility"), std::string::npos);
}

TEST(Report, ReciprocityReportsNobodyFinishing) {
  auto config = config_for(Algorithm::kReciprocity);
  config.max_time = 30.0;  // cut before the seeder can finish anyone fully
  Swarm s(config, strategy::make_strategy(config.algorithm));
  RunMetrics m;
  m.install(s);
  s.run();
  const RunReport r = build_report(s, m);
  EXPECT_EQ(r.completion_times.size(), 0u);
  EXPECT_EQ(r.completed_fraction, 0.0);
  const std::string text = summarize_report(r);
  EXPECT_NE(text.find("0/30"), std::string::npos);
}

}  // namespace
}  // namespace coopnet::metrics
