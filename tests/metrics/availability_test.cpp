#include "metrics/availability.h"

#include <gtest/gtest.h>

#include <numeric>

#include "strategy/factory.h"

namespace coopnet::metrics {
namespace {

sim::SwarmConfig avail_config() {
  auto config = sim::SwarmConfig::small(core::Algorithm::kAltruism, 91);
  config.n_peers = 30;
  return config;
}

TEST(AvailabilitySnapshot, InitialStateIsAllEmpty) {
  auto config = avail_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  // Before run() nobody is active.
  const auto snap = availability_snapshot(swarm);
  EXPECT_EQ(snap.active_leechers, 0u);
  EXPECT_EQ(snap.mean_pieces, 0.0);
}

TEST(AvailabilitySnapshot, MidRunDistributionIsNormalized) {
  auto config = avail_config();
  config.max_time = 5.0;  // stop mid-swarm
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  swarm.run();
  const auto snap = availability_snapshot(swarm);
  ASSERT_GT(snap.active_leechers, 0u);
  const double total = std::accumulate(
      snap.piece_count_distribution.begin(),
      snap.piece_count_distribution.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(snap.mean_pieces, 0.0);
  EXPECT_LT(snap.mean_pieces,
            static_cast<double>(config.piece_count()));
  EXPECT_GE(snap.min_replication, 1u);  // the seeder backs every piece
}

TEST(AvailabilitySnapshot, FeedsTheAnalyticalModel) {
  auto config = avail_config();
  config.max_time = 5.0;
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  swarm.run();
  const auto snap = availability_snapshot(swarm);
  ASSERT_GT(snap.active_leechers, 0u);
  const auto dist = to_distribution(snap);
  EXPECT_EQ(dist.total_pieces(),
            static_cast<std::int64_t>(config.piece_count()));
  EXPECT_NEAR(dist.mean(), snap.mean_pieces, 1e-9);
  // The measured distribution plugs into the pi model and yields a valid
  // probability.
  const double pi = core::expected_pi(dist, [&](auto mj, auto mi) {
    return core::pi_altruism(mj, mi, dist.total_pieces());
  });
  EXPECT_GE(pi, 0.0);
  EXPECT_LE(pi, 1.0);
}

TEST(AvailabilityTracker, CollectsMonotoneMeanUnderAltruism) {
  auto config = avail_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  AvailabilityTracker tracker(2.0);
  tracker.install(swarm);
  swarm.run();
  ASSERT_GE(tracker.snapshots().size(), 2u);
  const auto series = tracker.mean_pieces_series();
  // Mean piece count over active peers rises while the swarm fills (the
  // very tail can dip as finished peers leave; check the first half).
  const auto& snaps = tracker.snapshots();
  for (std::size_t i = 1; i < snaps.size() / 2; ++i) {
    EXPECT_GE(snaps[i].mean_pieces, snaps[i - 1].mean_pieces - 1e-9) << i;
  }
  EXPECT_EQ(series.size(), snaps.size());
}

TEST(AvailabilityTracker, DoubleInstallThrows) {
  auto config = avail_config();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  AvailabilityTracker tracker;
  tracker.install(swarm);
  EXPECT_THROW(tracker.install(swarm), std::logic_error);
  EXPECT_THROW(AvailabilityTracker(0.0), std::invalid_argument);
}

TEST(ToDistribution, EmptySnapshotThrows) {
  AvailabilitySnapshot snap;
  snap.piece_count_distribution.assign(9, 0.0);
  EXPECT_THROW(to_distribution(snap), std::invalid_argument);
}

}  // namespace
}  // namespace coopnet::metrics
