#include "metrics/json.h"

#include <gtest/gtest.h>

#include "exp/runner.h"

namespace coopnet::metrics {
namespace {

RunReport sample_report() {
  auto config = sim::SwarmConfig::small(core::Algorithm::kAltruism, 51);
  config.n_peers = 20;
  config.free_rider_fraction = 0.1;
  return exp::run_scenario(config);
}

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("BitTorrent"), "BitTorrent");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ToJson, ContainsAllTopLevelFields) {
  const std::string json = to_json(sample_report());
  for (const char* field :
       {"\"algorithm\"", "\"compliant_population\"",
        "\"completed_fraction\"", "\"susceptibility\"",
        "\"completion_summary\"", "\"bootstrap_summary\"",
        "\"completion_times\"", "\"bootstrap_times\"",
        "\"fairness_series\"", "\"susceptibility_series\"",
        "\"total_uploaded_bytes\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  EXPECT_NE(json.find("\"Altruism\""), std::string::npos);
}

TEST(ToJson, BalancedBracesAndBrackets) {
  const std::string json = to_json(sample_report());
  long braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(ToJson, SeriesArraysAreParallel) {
  const auto report = sample_report();
  const std::string json = to_json(report);
  // Count commas inside the fairness series arrays indirectly: both arrays
  // must contain the same number of elements as the series has points.
  const auto pos = json.find("\"fairness_series\"");
  ASSERT_NE(pos, std::string::npos);
  const auto time_pos = json.find("\"time\": [", pos);
  const auto value_pos = json.find("\"value\": [", pos);
  ASSERT_NE(time_pos, std::string::npos);
  ASSERT_NE(value_pos, std::string::npos);
  auto count_elems = [&](std::size_t start) {
    const auto open = json.find('[', start);
    const auto close = json.find(']', open);
    const std::string body = json.substr(open + 1, close - open - 1);
    if (body.empty()) return std::size_t{0};
    return static_cast<std::size_t>(
               std::count(body.begin(), body.end(), ',')) +
           1;
  };
  EXPECT_EQ(count_elems(time_pos), report.fairness_series.size());
  EXPECT_EQ(count_elems(value_pos), report.fairness_series.size());
}

TEST(ToJson, NonFiniteValuesBecomeNull) {
  RunReport r;
  r.settled_fairness = std::numeric_limits<double>::infinity();
  const std::string json = to_json(r);
  const auto pos = json.find("\"settled_fairness\"");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(json.substr(json.find(':', pos) + 2, 4), "null");
}

TEST(ToJson, ArrayOfReports) {
  const auto r = sample_report();
  const std::string json = to_json(std::vector<RunReport>{r, r});
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  // Two report objects.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"algorithm\"", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace coopnet::metrics
