// Scenario: the same swarm run three times -- on an ideal transport, on a
// lossy one, and through heavy churn -- to show what the fault layer does
// and how to read its counters.
//
// The paper's evaluation (Section V) assumes transfers always complete and
// peers stay until they finish. Real swarms are messier: connections drop,
// peers leave mid-download and come back, the seeder goes away for a
// while. FaultConfig injects exactly those failures, deterministically.
//
//   ./unreliable_swarm [--algo T-Chain] [--n 60] [--seed 11]
#include <cstdio>

#include "exp/runner.h"
#include "sim/faults.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace coopnet;
  const util::Cli cli(argc, argv);
  const core::Algorithm algo =
      core::algorithm_from_string(cli.get_string("algo", "T-Chain"));

  auto base = sim::SwarmConfig::small(
      algo, static_cast<std::uint64_t>(cli.get_int("seed", 11)));
  base.n_peers = static_cast<std::size_t>(cli.get_int("n", 60));

  struct Variant {
    const char* name;
    sim::FaultConfig faults;
  };
  Variant variants[] = {
      {"ideal transport", sim::FaultConfig{}},
      {"20% transfer loss", sim::lossy_faults(0.20)},
      {"heavy churn", sim::heavy_churn()},
  };

  std::printf("%s, %zu peers, same seed for all three runs.\n\n",
              core::to_string(algo).c_str(), base.n_peers);

  util::Table table("One swarm, three transports");
  table.set_header({"Transport", "finished", "mean compl. (s)", "retries",
                    "abandoned", "departed", "rejoined", "lost for good",
                    "goodput"});
  for (const Variant& v : variants) {
    sim::SwarmConfig config = base;
    config.faults = v.faults;
    const metrics::RunReport r = exp::run_scenario(config);
    const auto& f = r.faults;
    table.add_row(
        {v.name,
         std::to_string(r.completion_times.size()) + "/" +
             std::to_string(r.compliant_population),
         r.completion_times.empty()
             ? "never"
             : util::Table::num(r.completion_summary.mean, 5),
         std::to_string(f.retries_scheduled),
         std::to_string(f.transfers_abandoned),
         std::to_string(f.churn_departures),
         std::to_string(f.churn_rejoins), std::to_string(f.churn_losses),
         util::Table::pct(r.goodput_ratio)});
  }
  std::printf("%s", table.render().c_str());

  std::printf(
      "\nHow to read this:\n"
      " - Retries are the swarm re-attempting failed transfers with capped\n"
      "   exponential backoff; abandoned transfers exhausted their retries\n"
      "   (the piece is then re-requested through the normal machinery).\n"
      " - Departed peers left abruptly mid-download; rejoined ones came\n"
      "   back with their piece sets intact. Peers lost for good lower the\n"
      "   achievable completion rate.\n"
      " - Goodput is delivered payload over offered payload: the slot time\n"
      "   wasted on failed transfers is the gap to 100%%.\n"
      "\nSame seed + same FaultConfig reproduces a run bit for bit; a\n"
      "default FaultConfig is exactly the ideal simulator.\n");
  return 0;
}
