// Scenario: a cloud server pushes a firmware update to a fleet of IoT
// devices (the paper's introductory motivation). The operator must choose
// the incentive mechanism that disseminates the update fastest while
// keeping contributions balanced across devices with very different uplink
// capacities.
//
//   ./iot_update_dissemination [--devices 400] [--update-mb 16] [--seed 3]
//
// Output: time until 50% / 90% / 100% of the fleet holds the update, and
// the contribution balance, for each candidate mechanism.
#include <cstdio>

#include "exp/runner.h"
#include "util/cli.h"
#include "util/histogram.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace coopnet;
  const util::Cli cli(argc, argv);
  const auto devices =
      static_cast<std::size_t>(cli.get_int("devices", 400));
  const long update_mb = cli.get_int("update-mb", 16);

  std::printf("IoT update dissemination: %zu devices, %ld MiB update, "
              "heterogeneous uplinks\n"
              "(cellular 64 KiB/s ... ethernet 2 MiB/s), one cloud "
              "seeder.\n\n",
              devices, update_mb);

  util::Table table("Mechanism comparison");
  table.set_header({"Mechanism", "50% fleet (s)", "90% fleet (s)",
                    "100% fleet (s)", "fairness F", "verdict"});

  for (core::Algorithm algo : core::kAllAlgorithms) {
    auto config = sim::SwarmConfig::paper_scale(
        algo, static_cast<std::uint64_t>(cli.get_int("seed", 3)));
    config.n_peers = devices;
    config.file_bytes = update_mb * 1024LL * 1024LL;
    config.piece_bytes = 128LL * 1024;
    // Device uplink mix: mostly constrained radio links, a few wired hubs.
    config.capacities = core::CapacityDistribution({
        {64.0 * 1024, 0.40},    // cellular
        {192.0 * 1024, 0.30},   // Wi-Fi, congested
        {512.0 * 1024, 0.20},   // Wi-Fi, good
        {2048.0 * 1024, 0.10},  // ethernet-backed hubs
    });
    config.seeder_capacity = 2.0 * 1024 * 1024;  // the cloud server
    config.graph.degree = 30;
    config.max_time = 3000.0;

    const auto report = exp::run_scenario(config);
    const auto cdf = metrics::completion_cdf(report);

    auto time_at = [&](double fraction) -> std::string {
      for (const auto& p : cdf) {
        if (p.fraction >= fraction) return util::Table::num(p.x, 5);
      }
      return "never";
    };
    const bool finished = report.completed_fraction >= 1.0 - 1e-9;
    std::string verdict;
    if (!finished) {
      verdict = "unusable: update never converges";
    } else if (report.final_fairness_F > 0.8) {
      verdict = "fast but drains the constrained devices";
    } else if (report.completion_summary.mean <
               2.5 * 60.0) {  // purely illustrative threshold
      verdict = "good balance";
    } else {
      verdict = "converges; slower tail";
    }
    table.add_row({core::to_string(algo), time_at(0.5), time_at(0.9),
                   time_at(1.0),
                   report.final_fairness_F < 0.0
                       ? "-"
                       : util::Table::num(report.final_fairness_F, 3),
                   verdict});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading the table: altruism converges fastest but pushes the most "
      "load onto\ndevices that did not benefit proportionally (highest F); "
      "pure reciprocity\nnever disseminates. The hybrids -- T-Chain "
      "especially -- spread the update\nnearly as fast while keeping "
      "contributions proportional to consumption,\nwhich is what a mixed "
      "battery-powered fleet needs.\n");
  return 0;
}
