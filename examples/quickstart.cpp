// Quickstart: simulate one cooperative swarm and read the results.
//
//   ./quickstart [--algo T-Chain] [--n 200] [--seed 42]
//
// The five steps below are the whole public API surface most users need:
// configure a scenario, run it, and inspect the report. For analytical
// (closed-form) results without a simulation, see the core:: headers and
// the other examples.
#include <cstdio>

#include "exp/runner.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace coopnet;
  const util::Cli cli(argc, argv);

  // 1. Pick an incentive mechanism (all six of the paper's algorithms are
  //    available: Reciprocity, T-Chain, BitTorrent, FairTorrent,
  //    Reputation, Altruism).
  const core::Algorithm algo =
      core::algorithm_from_string(cli.get_string("algo", "T-Chain"));

  // 2. Configure the swarm. SwarmConfig::small is a fast demo scale;
  //    SwarmConfig::paper_scale reproduces Section V-A (1000 peers,
  //    128 MB file). Every knob is a plain struct field.
  auto config = sim::SwarmConfig::small(
      algo, static_cast<std::uint64_t>(cli.get_int("seed", 42)));
  config.n_peers = static_cast<std::size_t>(cli.get_int("n", 200));
  config.max_time = 2000.0;

  // 3. Run. run_scenario wires the strategy, swarm, and metrics together.
  const metrics::RunReport report = exp::run_scenario(config);

  // 4. Read the one-line summary...
  std::printf("%s\n\n", metrics::summarize_report(report).c_str());

  // 5. ...or the detailed figures.
  std::printf("completed:            %zu of %zu compliant peers\n",
              report.completion_times.size(), report.compliant_population);
  if (!report.completion_times.empty()) {
    std::printf("completion time:      mean %.1f s, median %.1f s, p90 %.1f "
                "s\n",
                report.completion_summary.mean,
                report.completion_summary.median,
                report.completion_summary.p90);
  }
  if (!report.bootstrap_times.empty()) {
    std::printf("bootstrap time:       median %.2f s (first piece after "
                "arrival)\n",
                report.bootstrap_summary.median);
  }
  if (report.settled_fairness >= 0.0) {
    std::printf("fairness (mean u/d):  %.3f   (1.0 = every peer gives as "
                "much as it gets)\n",
                report.settled_fairness);
  }
  if (report.final_fairness_F >= 0.0) {
    std::printf("fairness F (eq. 3):   %.3f   (0.0 = perfectly fair)\n",
                report.final_fairness_F);
  }
  std::printf("bytes moved:          %.1f MiB uploaded swarm-wide\n",
              static_cast<double>(report.total_uploaded_bytes) /
                  (1024.0 * 1024.0));
  return 0;
}
