// Scenario: an operator audits how robust each incentive mechanism is
// before deploying it in an open network where some fraction of clients
// will free-ride (Section IV-C / Figures 5-6). For each mechanism the
// audit runs the *worst-case* attack (collusion vs T-Chain, whitewashing
// vs FairTorrent, sybil praise vs reputation, plain free-riding elsewhere)
// across a range of free-rider fractions.
//
//   ./freerider_audit [--n 300] [--max-fraction 0.4] [--large-view]
#include <cstdio>

#include "exp/runner.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace coopnet;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 300));
  const double max_fraction = cli.get_double("max-fraction", 0.4);
  const bool large_view = cli.has("large-view");

  std::printf("Free-riding audit: %zu peers, worst-case attack per "
              "mechanism%s.\nSusceptibility = share of users' upload "
              "bandwidth captured by free-riders.\n\n",
              n, large_view ? ", large-view exploit enabled" : "");

  util::Table table("");
  std::vector<std::string> header = {"Mechanism"};
  std::vector<double> fractions;
  for (double f = 0.1; f <= max_fraction + 1e-9; f += 0.1) {
    fractions.push_back(f);
    header.push_back(util::Table::pct(f, 0) + " FR");
  }
  header.push_back("compliant slowdown @20% FR");
  table.set_header(header);

  for (core::Algorithm algo : core::kAllAlgorithms) {
    if (algo == core::Algorithm::kReciprocity) continue;  // nothing moves
    std::vector<std::string> row = {core::to_string(algo)};

    auto base = sim::SwarmConfig::paper_scale(
        algo, static_cast<std::uint64_t>(cli.get_int("seed", 17)));
    base.n_peers = n;
    base.file_bytes = 32LL * 1024 * 1024;
    base.graph.degree = 30;
    base.max_time = 2000.0;

    const auto clean = exp::run_scenario(base);
    double mean_at_20 = 0.0;
    for (double f : fractions) {
      const auto report =
          exp::run_scenario(exp::with_freeriders(base, f, large_view));
      row.push_back(util::Table::pct(report.susceptibility));
      if (std::abs(f - 0.2) < 1e-9) {
        mean_at_20 = report.completion_summary.mean;
      }
    }
    row.push_back(
        clean.completion_summary.mean > 0.0 && mean_at_20 > 0.0
            ? util::Table::num(mean_at_20 / clean.completion_summary.mean,
                               3) + "x"
            : "-");
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nHow to read this: a mechanism is deployable in an open network "
      "only if its\nsusceptibility column stays flat as the free-rider "
      "fraction grows. T-Chain's\nreciprocity requirement keeps it near "
      "zero at every fraction; altruism and\nthe (sybil-attacked) "
      "reputation system hand free-riders their full demand\nshare; "
      "BitTorrent and FairTorrent leak their altruism budget.\n");
  return 0;
}
