// Scenario: watch piece availability evolve through a swarm's life and
// feed the *measured* piece-count distribution p_k into the paper's
// exchange-probability model (Section IV-A.2) at each stage -- showing how
// T-Chain's indirect reciprocity closes the gap to altruism as the swarm
// matures, on real (simulated) distributions rather than stylized ones.
//
//   ./availability_study [--n 200] [--algo BitTorrent] [--seed 5]
#include <cstdio>

#include "exp/runner.h"
#include "metrics/availability.h"
#include "strategy/factory.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace coopnet;
  const util::Cli cli(argc, argv);
  const core::Algorithm algo =
      core::algorithm_from_string(cli.get_string("algo", "BitTorrent"));

  auto config = sim::SwarmConfig::paper_scale(
      algo, static_cast<std::uint64_t>(cli.get_int("seed", 5)));
  config.n_peers = static_cast<std::size_t>(cli.get_int("n", 200));
  config.file_bytes = 32LL * 1024 * 1024;
  config.graph.degree = 25;
  config.max_time = 2000.0;

  sim::Swarm swarm(config, strategy::make_strategy(algo));
  metrics::AvailabilityTracker tracker(5.0);
  tracker.install(swarm);
  std::printf("Running a %zu-peer %s swarm and sampling piece availability "
              "every 5 s...\n\n",
              config.n_peers, core::to_string(algo).c_str());
  swarm.run();

  const auto& snapshots = tracker.snapshots();
  if (snapshots.empty()) {
    std::printf("swarm drained before the first sample\n");
    return 0;
  }

  util::Table table("Measured availability -> analytical exchange "
                    "probabilities (eqs. 4-8 on the measured p_k)");
  table.set_header({"t (s)", "active", "mean pieces", "min replication",
                    "E[pi] altruism", "E[pi] T-Chain", "E[pi] BitTorrent"});
  // Sample a handful of snapshots across the run.
  const std::size_t step = std::max<std::size_t>(1, snapshots.size() / 8);
  for (std::size_t i = 0; i < snapshots.size(); i += step) {
    const auto& snap = snapshots[i];
    const auto dist = metrics::to_distribution(snap);
    const auto M = dist.total_pieces();
    const auto n_active =
        static_cast<std::int64_t>(snap.active_leechers);
    if (n_active < 2) continue;
    const double pi_alt = core::expected_pi(dist, [&](auto mj, auto mi) {
      return core::pi_altruism(mj, mi, M);
    });
    const double pi_tc = core::expected_pi(dist, [&](auto mj, auto mi) {
      return core::pi_tchain(mj, mi, dist, n_active);
    });
    const double pi_bt = core::expected_pi(dist, [&](auto mj, auto mi) {
      return core::pi_bittorrent(mj, mi, M, 0.2);
    });
    table.add_row({util::Table::num(snap.time, 4),
                   std::to_string(snap.active_leechers),
                   util::Table::num(snap.mean_pieces, 4),
                   std::to_string(snap.min_replication),
                   util::Table::num(pi_alt, 4), util::Table::num(pi_tc, 4),
                   util::Table::num(pi_bt, 4)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nWhat to look for: early on (few pieces each) direct reciprocity "
      "is nearly\nimpossible and BitTorrent's E[pi] trails altruism's, "
      "while T-Chain's indirect\nreciprocity already tracks altruism "
      "(Cor. 2); as the swarm fills, all three\nconverge toward 1 and "
      "piece availability stops being the bottleneck.\n");
  return 0;
}
