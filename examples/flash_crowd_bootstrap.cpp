// Scenario: a flash crowd hits an exchange network and every newcomer
// needs its first piece ("bootstrapping", Section IV-B). This example
// contrasts the analytical Table II model with simulation: both the
// closed-form per-timeslot probabilities and the measured time-to-first-
// piece distribution for each mechanism.
//
//   ./flash_crowd_bootstrap [--n 300] [--seed 9]
#include <cstdio>

#include "core/bootstrap.h"
#include "exp/runner.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace coopnet;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 300));

  // --- analytical side: Table II at this swarm's scale -------------------
  core::BootstrapParams params;
  params.n_users = static_cast<std::int64_t>(n);
  params.n_ft = params.n_users / 2;
  const std::int64_t z = params.n_users / 2;

  std::printf("Flash crowd of %zu users; analytical bootstrap probability "
              "per timeslot\nonce half the swarm holds pieces (Table II), "
              "and the expected slots until\nall newcomers are bootstrapped "
              "(eq. 10):\n\n",
              n);
  util::Table analytic("");
  analytic.set_header(
      {"Mechanism", "p_B at z=N/2", "E[slots] for N/2 newcomers"});
  for (core::Algorithm algo : core::kAllAlgorithms) {
    analytic.add_row(
        {core::to_string(algo),
         util::Table::pct(core::bootstrap_probability(algo, params, z)),
         util::Table::num(core::expected_bootstrap_time_dynamic(
                              algo, params, params.n_users / 2, z),
                          4)});
  }
  std::printf("%s", analytic.render().c_str());

  // --- simulated side: measured time-to-first-piece ----------------------
  std::printf("\nSimulated flash crowd (same population, event-driven "
              "swarm):\n\n");
  util::Table sim_table("");
  sim_table.set_header({"Mechanism", "median bootstrap (s)",
                        "p90 bootstrap (s)", "bootstrapped"});
  for (core::Algorithm algo : core::kAllAlgorithms) {
    auto config = sim::SwarmConfig::paper_scale(
        algo, static_cast<std::uint64_t>(cli.get_int("seed", 9)));
    config.n_peers = n;
    config.file_bytes = 32LL * 1024 * 1024;
    config.graph.degree = 30;
    config.max_time = 600.0;  // bootstrap happens early; no need to finish
    const auto report = exp::run_scenario(config);
    sim_table.add_row(
        {core::to_string(algo),
         report.bootstrap_times.empty()
             ? "-"
             : util::Table::num(report.bootstrap_summary.median, 4),
         report.bootstrap_times.empty()
             ? "-"
             : util::Table::num(report.bootstrap_summary.p90, 4),
         util::Table::pct(report.bootstrapped_fraction, 0)});
  }
  std::printf("%s", sim_table.render().c_str());
  std::printf(
      "\nBoth views agree on the ordering (Prop. 4): altruism, FairTorrent "
      "and\nT-Chain bootstrap newcomers almost immediately; BitTorrent's "
      "tit-for-tat\nslots and the reputation system's zero-reputation "
      "newcomers are an order of\nmagnitude slower; pure reciprocity leaves "
      "bootstrapping entirely to the\nseeder.\n");
  return 0;
}
