// Micro-benchmarks (google-benchmark) for the simulator's hot paths: the
// event queue, piece-set scans, rarest-first selection, the analytical
// piece-availability kernels, and end-to-end small swarm runs per
// algorithm. Not a paper artifact; a performance guard for the substrate.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "core/piece_availability.h"
#include "exp/runner.h"
#include "metrics/json.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/piece_set.h"
#include "sim/reference_engine.h"
#include "strategy/factory.h"
#include "util/rng.h"

namespace {

using namespace coopnet;

// --- churn workload --------------------------------------------------------
// The simulator's event pattern, distilled: a standing population of
// pending events where every fired event reschedules one successor (a tick
// chain) and sometimes a second, larger event (a transfer completion
// carrying a Transfer-sized payload that overflows small-capture
// optimizations). Both engines replay it identically -- pop order decides
// the RNG draws, and the differential suite pins pop order -- so the
// optimized/reference ratio isolates pure scheduler cost.
template <typename Engine>
struct ChurnDriver {
  // Matches sizeof a [this, Transfer] capture (64 bytes): the completion
  // events that dominate a real run and exceed any 48-byte inline buffer.
  struct Payload {
    double a[6];
    std::uint32_t b[4];
  };

  Engine engine;
  util::Rng rng{42};
  std::uint64_t fired = 0;
  std::uint64_t budget = 0;
  double sink = 0.0;

  void fire_small() {
    ++fired;
    reschedule();
  }
  void fire_payload(const Payload& p) {
    ++fired;
    sink += p.a[0];
    reschedule();
  }
  void reschedule() {
    if (fired >= budget) return;
    engine.schedule(rng.uniform(0.0, 2.0), [this] { fire_small(); });
    if (rng.bernoulli(0.3)) {
      Payload p{};
      p.a[0] = 1.0;
      engine.schedule(rng.uniform(0.0, 4.0),
                      [this, p] { fire_payload(p); });
    }
  }
};

template <typename Engine>
std::uint64_t run_churn(std::size_t pending, std::uint64_t budget,
                        bool batched = false) {
  ChurnDriver<Engine> driver;
  // Batched staging with a no-op prepare hook isolates the pure
  // bookkeeping cost of --threads mode (stage, hint copy, commit-time
  // merge) from any prepare win. Only the optimized engine has the mode.
  if constexpr (std::is_same_v<Engine, sim::SimEngine>) {
    if (batched) {
      driver.engine.set_parallel([](const std::uint32_t*, std::size_t) {});
    }
  } else {
    (void)batched;
  }
  driver.budget = budget;
  for (std::size_t i = 0; i < pending; ++i) {
    driver.engine.schedule(driver.rng.uniform(0.0, 2.0),
                           [d = &driver] { d->fire_small(); });
  }
  driver.engine.run();
  benchmark::DoNotOptimize(driver.sink);
  return driver.engine.events_processed();
}

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  for (auto _ : state) {
    sim::SimEngine engine;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule(rng.uniform(0.0, 1000.0), [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

// The headline scheduler benchmark: self-rescheduling event churn (see
// ChurnDriver) on the optimized engine vs the preserved seed engine. The
// perf gate tracks the optimized/reference events/sec ratio, which is
// machine-independent.
void BM_EventQueueChurn(benchmark::State& state) {
  const auto pending = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    events += run_churn<sim::SimEngine>(pending, pending * 20);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventQueueChurn)->Arg(1000)->Arg(100000);

void BM_EventQueueChurnReference(benchmark::State& state) {
  const auto pending = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    events += run_churn<sim::ReferenceEngine>(pending, pending * 20);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventQueueChurnReference)->Arg(1000)->Arg(100000);

void BM_PieceSetOfferScan(benchmark::State& state) {
  const auto m = static_cast<sim::PieceId>(state.range(0));
  util::Rng rng(2);
  sim::PieceSet offer(m), excluded(m);
  for (sim::PieceId p = 0; p < m; ++p) {
    if (rng.bernoulli(0.5)) offer.add(p);
    if (rng.bernoulli(0.5)) excluded.add(p);
  }
  for (auto _ : state) {
    std::size_t count = offer.for_each_offerable(
        excluded, [](sim::PieceId) {});
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PieceSetOfferScan)->Arg(512)->Arg(4096);

void BM_QNeedsKernel(benchmark::State& state) {
  const std::int64_t M = state.range(0);
  std::int64_t mi = 0;
  for (auto _ : state) {
    const double q = core::q_needs(mi % M, (mi * 7 + 3) % M, M);
    benchmark::DoNotOptimize(q);
    ++mi;
  }
}
BENCHMARK(BM_QNeedsKernel)->Arg(512);

void BM_PiTChainKernel(benchmark::State& state) {
  const std::int64_t M = state.range(0);
  const auto dist = core::PieceCountDistribution::uniform_interior(M);
  std::int64_t mi = 1;
  for (auto _ : state) {
    const double pi =
        core::pi_tchain(mi % (M - 1) + 1, (mi * 5) % (M - 1) + 1, dist, 1000);
    benchmark::DoNotOptimize(pi);
    ++mi;
  }
}
BENCHMARK(BM_PiTChainKernel)->Arg(128);

void BM_SmallSwarmRun(benchmark::State& state) {
  const auto algo = static_cast<core::Algorithm>(state.range(0));
  for (auto _ : state) {
    auto config = sim::SwarmConfig::small(algo, 7);
    config.max_time = 500.0;
    const auto report = exp::run_scenario(config);
    benchmark::DoNotOptimize(report.total_uploaded_bytes);
  }
  state.SetLabel(core::to_string(algo));
}
BENCHMARK(BM_SmallSwarmRun)
    ->DenseRange(0, 5, 1)
    ->Unit(benchmark::kMillisecond);

void BM_MidSwarmBitTorrent(benchmark::State& state) {
  for (auto _ : state) {
    auto config =
        sim::SwarmConfig::paper_scale(core::Algorithm::kBitTorrent, 7);
    config.n_peers = 300;
    config.file_bytes = 32LL * 1024 * 1024;
    config.graph.degree = 30;
    config.max_time = 1500.0;
    const auto report = exp::run_scenario(config);
    benchmark::DoNotOptimize(report.total_uploaded_bytes);
  }
}
BENCHMARK(BM_MidSwarmBitTorrent)->Unit(benchmark::kMillisecond);

// Audit-neutrality self-check: the auditor is pure observation, so a run
// with invariant checks at every event must produce a bit-identical
// report to the same run with auditing off -- in audit builds (checks on
// vs off) and in normal builds (where audit_every must be a no-op knob
// with zero overhead). Runs once before the benchmarks.
bool audit_neutrality_check() {
  auto config = sim::SwarmConfig::small(core::Algorithm::kBitTorrent, 7);
  config.max_time = 500.0;
  config.faults = sim::moderate_churn();
  config.faults.transfer_loss_rate = 0.05;

  config.audit_every = 1;
  const std::string audited = metrics::to_json(exp::run_scenario(config));
  config.audit_every = 0;
  const std::string bare = metrics::to_json(exp::run_scenario(config));
  if (audited != bare) {
    std::fprintf(stderr,
                 "micro_engine: FAIL -- auditing perturbed the run "
                 "(audit_every=1 vs 0 reports differ)\n");
    return false;
  }
  std::fprintf(stderr, "audit-neutrality self-check: OK\n");
  return true;
}

// --- BENCH_engine.json -----------------------------------------------------
// Fixed-workload measurements for the perf-regression gate: the churn and
// schedule/run workloads on the optimized engine and the preserved seed
// engine, in this one binary, so the "speedup" fields are measured on one
// machine by identical code. tools/ci_bench_gate.sh gates on the ratios.
int emit_bench_json(const std::string& path) {
  using bench::BenchRecord;
  std::vector<BenchRecord> records;

  auto timed = [](auto&& fn) {
    const double start = bench::wall_now();
    const std::uint64_t events = fn();
    return std::pair<std::uint64_t, double>(events,
                                            bench::wall_now() - start);
  };
  // Best-of-three keeps one scheduler hiccup from polluting the committed
  // baseline.
  auto best_of = [&timed](auto&& fn) {
    std::uint64_t events = 0;
    double best = -1.0;
    for (int rep = 0; rep < 3; ++rep) {
      auto [e, w] = timed(fn);
      if (best < 0.0 || w < best) {
        best = w;
        events = e;
      }
    }
    return std::pair<std::uint64_t, double>(events, best);
  };

  struct Workload {
    const char* name;
    std::size_t pending;
    std::uint64_t budget;
  };
  for (const Workload& w : {Workload{"churn/pending=1000", 1000, 2000000},
                            Workload{"churn/pending=100000", 100000,
                                     2000000}}) {
    BenchRecord opt;
    opt.name = std::string("engine_") + w.name;
    std::tie(opt.events, opt.wall_s) = best_of(
        [&w] { return run_churn<sim::SimEngine>(w.pending, w.budget); });

    BenchRecord ref;
    ref.name = std::string("reference_") + w.name;
    std::tie(ref.events, ref.wall_s) = best_of(
        [&w] { return run_churn<sim::ReferenceEngine>(w.pending, w.budget); });

    // The same workload through the batched (--threads) staging path
    // with a no-op hook: its events must equal the sequential run's
    // (determinism gate) and its events/s tracks the staging overhead.
    BenchRecord bat;
    bat.name = std::string("engine_batched_") + w.name;
    std::tie(bat.events, bat.wall_s) = best_of([&w] {
      return run_churn<sim::SimEngine>(w.pending, w.budget, /*batched=*/true);
    });
    bat.extra.push_back(
        {"overhead_vs_sequential",
         opt.events_per_sec() / bat.events_per_sec()});

    opt.extra.push_back(
        {"speedup_vs_reference", opt.events_per_sec() / ref.events_per_sec()});
    std::printf("%-28s %12.0f events/s  (reference %12.0f, speedup %.2fx, "
                "batched-noop %12.0f)\n",
                w.name, opt.events_per_sec(), ref.events_per_sec(),
                opt.events_per_sec() / ref.events_per_sec(),
                bat.events_per_sec());
    records.push_back(std::move(opt));
    records.push_back(std::move(ref));
    records.push_back(std::move(bat));
  }

  {
    util::Rng rng(1);
    std::vector<double> times(500000);
    for (auto& t : times) t = rng.uniform(0.0, 1000.0);
    auto schedule_run = [&times](auto engine_tag) {
      decltype(engine_tag) engine;
      std::size_t fired = 0;
      for (double t : times) {
        engine.schedule(t, [&fired] { ++fired; });
      }
      engine.run();
      benchmark::DoNotOptimize(fired);
      return engine.events_processed();
    };
    BenchRecord opt;
    opt.name = "engine_schedule_run/n=500000";
    std::tie(opt.events, opt.wall_s) =
        best_of([&] { return schedule_run(sim::SimEngine{}); });
    BenchRecord ref;
    ref.name = "reference_schedule_run/n=500000";
    std::tie(ref.events, ref.wall_s) =
        best_of([&] { return schedule_run(sim::ReferenceEngine{}); });
    opt.extra.push_back(
        {"speedup_vs_reference", opt.events_per_sec() / ref.events_per_sec()});
    std::printf("%-28s %12.0f events/s  (reference %12.0f, speedup %.2fx)\n",
                "schedule_run/n=500000", opt.events_per_sec(),
                ref.events_per_sec(),
                opt.events_per_sec() / ref.events_per_sec());
    records.push_back(std::move(opt));
    records.push_back(std::move(ref));
  }

  bench::write_bench_json(path, "micro_engine", records);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!audit_neutrality_check()) return 1;
  // --json-out=FILE bypasses google-benchmark and runs the fixed-workload
  // BENCH_engine.json measurements (the perf-gate artifact).
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json-out=", 11) == 0) {
      return emit_bench_json(arg + 11);
    }
    if (std::strcmp(arg, "--json-out") == 0 && i + 1 < argc) {
      return emit_bench_json(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
