// Micro-benchmarks (google-benchmark) for the simulator's hot paths: the
// event queue, piece-set scans, rarest-first selection, the analytical
// piece-availability kernels, and end-to-end small swarm runs per
// algorithm. Not a paper artifact; a performance guard for the substrate.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/piece_availability.h"
#include "exp/runner.h"
#include "metrics/json.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/piece_set.h"
#include "strategy/factory.h"
#include "util/rng.h"

namespace {

using namespace coopnet;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  for (auto _ : state) {
    sim::SimEngine engine;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule(rng.uniform(0.0, 1000.0), [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_PieceSetOfferScan(benchmark::State& state) {
  const auto m = static_cast<sim::PieceId>(state.range(0));
  util::Rng rng(2);
  sim::PieceSet offer(m), excluded(m);
  for (sim::PieceId p = 0; p < m; ++p) {
    if (rng.bernoulli(0.5)) offer.add(p);
    if (rng.bernoulli(0.5)) excluded.add(p);
  }
  for (auto _ : state) {
    std::size_t count = offer.for_each_offerable(
        excluded, [](sim::PieceId) {});
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PieceSetOfferScan)->Arg(512)->Arg(4096);

void BM_QNeedsKernel(benchmark::State& state) {
  const std::int64_t M = state.range(0);
  std::int64_t mi = 0;
  for (auto _ : state) {
    const double q = core::q_needs(mi % M, (mi * 7 + 3) % M, M);
    benchmark::DoNotOptimize(q);
    ++mi;
  }
}
BENCHMARK(BM_QNeedsKernel)->Arg(512);

void BM_PiTChainKernel(benchmark::State& state) {
  const std::int64_t M = state.range(0);
  const auto dist = core::PieceCountDistribution::uniform_interior(M);
  std::int64_t mi = 1;
  for (auto _ : state) {
    const double pi =
        core::pi_tchain(mi % (M - 1) + 1, (mi * 5) % (M - 1) + 1, dist, 1000);
    benchmark::DoNotOptimize(pi);
    ++mi;
  }
}
BENCHMARK(BM_PiTChainKernel)->Arg(128);

void BM_SmallSwarmRun(benchmark::State& state) {
  const auto algo = static_cast<core::Algorithm>(state.range(0));
  for (auto _ : state) {
    auto config = sim::SwarmConfig::small(algo, 7);
    config.max_time = 500.0;
    const auto report = exp::run_scenario(config);
    benchmark::DoNotOptimize(report.total_uploaded_bytes);
  }
  state.SetLabel(core::to_string(algo));
}
BENCHMARK(BM_SmallSwarmRun)
    ->DenseRange(0, 5, 1)
    ->Unit(benchmark::kMillisecond);

void BM_MidSwarmBitTorrent(benchmark::State& state) {
  for (auto _ : state) {
    auto config =
        sim::SwarmConfig::paper_scale(core::Algorithm::kBitTorrent, 7);
    config.n_peers = 300;
    config.file_bytes = 32LL * 1024 * 1024;
    config.graph.degree = 30;
    config.max_time = 1500.0;
    const auto report = exp::run_scenario(config);
    benchmark::DoNotOptimize(report.total_uploaded_bytes);
  }
}
BENCHMARK(BM_MidSwarmBitTorrent)->Unit(benchmark::kMillisecond);

// Audit-neutrality self-check: the auditor is pure observation, so a run
// with invariant checks at every event must produce a bit-identical
// report to the same run with auditing off -- in audit builds (checks on
// vs off) and in normal builds (where audit_every must be a no-op knob
// with zero overhead). Runs once before the benchmarks.
bool audit_neutrality_check() {
  auto config = sim::SwarmConfig::small(core::Algorithm::kBitTorrent, 7);
  config.max_time = 500.0;
  config.faults = sim::moderate_churn();
  config.faults.transfer_loss_rate = 0.05;

  config.audit_every = 1;
  const std::string audited = metrics::to_json(exp::run_scenario(config));
  config.audit_every = 0;
  const std::string bare = metrics::to_json(exp::run_scenario(config));
  if (audited != bare) {
    std::fprintf(stderr,
                 "micro_engine: FAIL -- auditing perturbed the run "
                 "(audit_every=1 vs 0 reports differ)\n");
    return false;
  }
  std::fprintf(stderr, "audit-neutrality self-check: OK\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!audit_neutrality_check()) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
