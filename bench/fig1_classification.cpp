// Figure 1 -- classification and expected performance of the incentive
// mechanisms. The paper's figure is qualitative; this bench derives each
// cell from the quantitative model: fairness/efficiency ranks from the
// idealized equilibrium (Cor. 1), bootstrap ranks from Table II, and
// free-riding ranks from Table III -- so the "expected performance" map is
// reproduced from first principles rather than asserted.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "core/bootstrap.h"
#include "core/capacity.h"
#include "core/fairness_efficiency.h"
#include "core/freeriding.h"

namespace {

using namespace coopnet;
using core::Algorithm;

/// Converts ascending metric values into dense ranks 1..k (1 = best).
std::map<Algorithm, int> rank_ascending(
    std::vector<std::pair<Algorithm, double>> values) {
  std::sort(values.begin(), values.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::map<Algorithm, int> ranks;
  int rank = 0;
  double prev = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i == 0 || values[i].second > prev + 1e-12) rank = static_cast<int>(i) + 1;
    ranks[values[i].first] = rank;
    prev = values[i].second;
  }
  return ranks;
}

const char* classification(Algorithm a) {
  switch (a) {
    case Algorithm::kReciprocity:
      return "basic: reciprocity";
    case Algorithm::kTChain:
      return "hybrid: reciprocity+reputation";
    case Algorithm::kBitTorrent:
      return "hybrid: reciprocity+altruism";
    case Algorithm::kFairTorrent:
      return "hybrid: reputation+altruism";
    case Algorithm::kReputation:
      return "basic: reputation";
    case Algorithm::kAltruism:
      return "basic: altruism";
    default:
      return "extension";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 7)));
  const auto caps = core::sorted_descending(
      core::CapacityDistribution::default_mix().sample(1000, rng));

  // Fairness / efficiency ranks from the idealized equilibrium.
  core::ModelParams params;
  std::vector<std::pair<Algorithm, double>> eff, fair, boot, expl;
  for (const auto& row : core::ideal_performance(caps, params)) {
    // Reciprocity's infinities rank last naturally via a large sentinel.
    const double e = std::isinf(row.efficiency) ? 1e18 : row.efficiency;
    const double f = std::isinf(row.fairness) ? 1e18 : row.fairness;
    eff.push_back({row.algorithm, e});
    // Reciprocity never exchanges: the paper's Fig. 1 marks its fairness
    // "high" by intent; rank by F with the degenerate case pinned best.
    fair.push_back({row.algorithm,
                    row.algorithm == Algorithm::kReciprocity ? -1.0 : f});
  }
  core::BootstrapParams bparams;
  for (const auto& row : core::bootstrap_table(bparams, 500)) {
    boot.push_back({row.algorithm, 1.0 - row.probability});  // lower = faster
  }
  for (Algorithm a : core::kAllAlgorithms) {
    expl.push_back(
        {a, core::exploitable_resources(a, caps, params, 0.75) +
                (a == Algorithm::kReputation ? 1e9 : 0.0)});  // collusion!
  }

  const auto eff_rank = rank_ascending(eff);
  const auto fair_rank = rank_ascending(fair);
  const auto boot_rank = rank_ascending(boot);
  const auto expl_rank = rank_ascending(expl);

  util::Table table("Figure 1: classification and model-derived ranks "
                    "(1 = best of 6)");
  table.set_header({"Algorithm", "classification", "fairness",
                    "efficiency", "bootstrapping",
                    "free-riding resistance"});
  for (Algorithm a : core::kAllAlgorithms) {
    table.add_row({core::to_string(a), classification(a),
                   std::to_string(fair_rank.at(a)),
                   std::to_string(eff_rank.at(a)),
                   std::to_string(boot_rank.at(a)),
                   std::to_string(expl_rank.at(a))});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading the map (paper Fig. 1): the basic algorithms trade "
      "fairness against\nefficiency (reciprocity fair/slow, altruism "
      "fast/unfair, reputation between);\nthe hybrids recover both, and "
      "only the reciprocity/reputation hybrid (T-Chain)\nalso keeps "
      "reciprocity's free-riding resistance.\n");
  return 0;
}
