// Micro-benchmarks (google-benchmark) for the parallel experiment runner:
// thread-pool submission/drain overhead, per-cell seed derivation, and the
// end-to-end scaling of a replicated small-swarm sweep across --jobs
// levels. Not a paper artifact; the performance guard for the scheduler
// added with the `--jobs` machinery.
#include <benchmark/benchmark.h>

#include <atomic>
#include <future>
#include <vector>

#include "exp/replication.h"
#include "exp/schedule.h"
#include "sim/config.h"
#include "util/thread_pool.h"

namespace {

using namespace coopnet;

// Pure queueing overhead: submit n trivial tasks, wait for all futures.
void BM_PoolSubmitDrain(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const std::size_t n_tasks = 1024;
  for (auto _ : state) {
    util::ThreadPool pool(workers);
    std::atomic<std::size_t> ran{0};
    std::vector<std::future<void>> pending;
    pending.reserve(n_tasks);
    for (std::size_t i = 0; i < n_tasks; ++i) {
      pending.push_back(pool.submit(
          [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
    }
    for (auto& f : pending) f.get();
    benchmark::DoNotOptimize(ran.load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_tasks));
}
BENCHMARK(BM_PoolSubmitDrain)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Futures round-trip with a returned value (the submit<R> path).
void BM_PoolSubmitValue(benchmark::State& state) {
  util::ThreadPool pool(2);
  for (auto _ : state) {
    auto f = pool.submit([] { return 41 + 1; });
    benchmark::DoNotOptimize(f.get());
  }
}
BENCHMARK(BM_PoolSubmitValue);

// Per-cell seed derivation: must stay O(1) and far off any hot path.
void BM_CellSeed(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exp::cell_seed(7, i++));
  }
}
BENCHMARK(BM_CellSeed);

// End-to-end: a replicated small-swarm sweep at increasing --jobs. On a
// k-core box throughput should rise until jobs ~ k; results are identical
// at every level (see tests/exp/parallel_determinism_test.cpp).
void BM_ReplicatedSweep(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  auto config = sim::SwarmConfig::small(core::Algorithm::kBitTorrent, 7);
  config.max_time = 300.0;
  const std::size_t reps = 8;
  for (auto _ : state) {
    const auto rep = exp::run_replicated(config, reps, 7, jobs);
    benchmark::DoNotOptimize(rep.completed_fraction.mean);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(reps));
}
BENCHMARK(BM_ReplicatedSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
