// Figure 4 -- performance with all users compliant: (a) completion-time
// CDFs (efficiency), (b) fairness vs time, (c) bootstrapping CDFs, for all
// six algorithms on the Section V-A scenario.
//
// Scales: --scale=paper (default, 1000 peers / 128 MB), mid, small;
// --csv dumps the raw series. Supervised-sweep flags (--cell-timeout,
// --event-budget, --journal, --resume; see exp/supervise.h) quarantine
// failing algorithm cells instead of aborting; exit code 3 flags a
// degraded sweep.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace coopnet;
  const util::Cli cli(argc, argv);
  try {
    auto config = bench::scenario_from_cli(cli);
    const exp::SweepControl control = exp::sweep_control_from_cli(cli);
    const fleet::FleetControl fleet = fleet::fleet_control_from_cli(cli);
    if (fleet.worker()) {
      return bench::run_fleet_worker(bench::figure_suite_cells(config),
                                     config.seed, fleet, control.supervision,
                                     control.checkpoint.every);
    }

    std::printf("Figure 4: compliant swarm, N = %zu, file = %lld MiB, seed = "
                "%llu\n\n",
                config.n_peers,
                static_cast<long long>(config.file_bytes / (1024 * 1024)),
                static_cast<unsigned long long>(config.seed));
    if (control.active() || fleet.active()) {
      const exp::SweepResult sweep = bench::run_figure_suite_supervised(
          config, /*with_susceptibility=*/false, bench::jobs_from_cli(cli),
          control, &fleet);
      bench::print_fluid_overlay(config, sweep.ok_reports());
      bench::maybe_dump_supervised_json(cli, sweep);
      return sweep.complete() ? 0 : 3;
    }
    const auto reports = bench::run_figure_suite(
        config, /*with_susceptibility=*/false, bench::jobs_from_cli(cli));
    bench::print_fluid_overlay(config, reports);

    std::printf(
        "\nExpected shape (Fig. 4): altruism completes fastest; reciprocity "
        "never\ncompletes; T-Chain/BitTorrent/FairTorrent comparable; "
        "fairness near 1 for the\nexchanging algorithms with T-Chain/"
        "FairTorrent the most fair by eq. 3;\nbootstrap: altruism ~ "
        "FairTorrent ~ T-Chain << BitTorrent < reputation <<\nreciprocity.\n");
    bench::maybe_dump_csv(cli, reports);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig4_compliant: %s\n", e.what());
    return 1;
  }
}
