// Figure 4a overlay: event-simulated vs fluid-predicted completion
// curves, one chart per mechanism, plus the sim/fluid mean-gap table.
// This is the visual counterpart of tests/core/fluid_crossval_test.cpp:
// where the test pins |sim/fluid - 1| inside committed bands, this
// artifact shows *where* on the curve the two backends agree (the bulk of
// the S-curve) and where the mean-field limit frays (the discrete tail).
//
//   fig4_fluid_overlay [--scale mid|small|paper] [--n N] [--file-mb M]
//                      [--seed S] [--max-time T] [--jobs K]
//
// Defaults to --scale mid (300 peers, 32 MB) so the artifact renders in
// about a minute; both backends consume the identical SwarmConfig,
// scheduled through the same mixed-backend run_cells_mixed path the
// sweep tools use.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "exp/backend.h"

namespace {

using namespace coopnet;

// The simulator reports arrival-to-finish durations; the fluid curve is
// completed fraction vs absolute time. Shift the sim durations by the
// mean flash-crowd arrival offset (window / 2) to put both on the same
// axis -- a bounded error of at most the window (10 s) against
// completion times in the hundreds.
util::PlotSeries sim_completion_series(const metrics::RunReport& report,
                                       double arrival_offset) {
  util::PlotSeries s;
  s.name = "sim";
  std::vector<double> times = report.completion_times;
  std::sort(times.begin(), times.end());
  const double population =
      static_cast<double>(report.compliant_population);
  s.points.push_back({0.0, 0.0});
  for (std::size_t i = 0; i < times.size(); ++i) {
    s.points.push_back({times[i] + arrival_offset,
                        static_cast<double>(i + 1) / population});
  }
  return s;
}

util::PlotSeries fluid_completion_series(const core::FluidReport& report) {
  util::PlotSeries s;
  s.name = "fluid";
  s.points = report.completion_curve;
  return s;
}

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  auto base = bench::scenario_from_cli(cli, "mid");

  std::vector<sim::SwarmConfig> cells;
  std::vector<exp::Backend> backends;
  for (core::Algorithm algo : core::kAllAlgorithms) {
    sim::SwarmConfig config = base;
    config.algorithm = algo;
    cells.push_back(config);
    backends.push_back(exp::Backend::kEvent);
  }
  std::printf("Figure 4 fluid overlay: N = %zu, file = %lld MiB, seed = "
              "%llu\n",
              base.n_peers,
              static_cast<long long>(base.file_bytes / (1024 * 1024)),
              static_cast<unsigned long long>(base.seed));

  exp::SweepTiming timing;
  const auto sim_reports = exp::run_cells_mixed(
      cells, backends, bench::jobs_from_cli(cli), &timing);
  bench::print_sweep_timing(timing);

  util::Table table("sim vs fluid mean completion time");
  table.set_header({"Algorithm", "sim mean (s)", "fluid mean (s)",
                    "|sim/fluid - 1|", "sim done", "fluid done"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const metrics::RunReport& sim = sim_reports[i];
    const core::FluidReport fluid = exp::run_fluid_scenario(cells[i]);

    const bool both_finish = sim.completion_summary.count > 0 &&
                             std::isfinite(fluid.mean_completion_time);
    table.add_row(
        {core::to_string(cells[i].algorithm),
         sim.completion_summary.count > 0
             ? util::Table::num(sim.completion_summary.mean, 5)
             : "never",
         std::isfinite(fluid.mean_completion_time)
             ? util::Table::num(fluid.mean_completion_time, 5)
             : "never",
         both_finish ? util::Table::num(
                           std::abs(sim.completion_summary.mean /
                                        fluid.mean_completion_time -
                                    1.0),
                           3)
                     : "-",
         util::Table::num(sim.completed_fraction, 3),
         util::Table::num(fluid.completed_fraction, 3)});

    if (!both_finish) continue;
    const double offset = cells[i].flash_crowd_window / 2.0;
    std::printf("\n%s: completion fraction vs time (s)\n",
                core::to_string(cells[i].algorithm).c_str());
    std::printf("%s",
                util::line_chart({sim_completion_series(sim, offset),
                                  fluid_completion_series(fluid)},
                                 72, 16, "t (s)", "fraction")
                    .c_str());
  }
  std::printf("\n%s", table.render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig4_fluid_overlay: %s\n", e.what());
    return 1;
  }
}
