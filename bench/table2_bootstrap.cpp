// Table II -- bootstrap probabilities for a flash crowd, including the
// paper's example column (N=1000, n_S=1, K=5, z=500, pi_DR=0.5, n_BT=4,
// omega=0.75, n_FT=500), plus expected bootstrap times E[T_B(P)] (eq. 10)
// with a self-consistent z(t) trajectory, the Prop. 4 condition, and K /
// pi_DR / omega ablation sweeps.
#include <cstdio>

#include <map>

#include "bench_common.h"
#include "core/bootstrap.h"

namespace {

using namespace coopnet;
using core::Algorithm;
using core::BootstrapParams;

void example_column() {
  BootstrapParams params;  // defaults are exactly the paper's example
  util::Table table("Table II: bootstrap probability per timeslot "
                    "(example point: z(t) = 500)");
  table.set_header({"Algorithm", "p_B (computed)", "paper"});
  const std::map<Algorithm, std::string> paper = {
      {Algorithm::kReciprocity, "0.1%"}, {Algorithm::kTChain, "71.4%"},
      {Algorithm::kBitTorrent, "39.6%"}, {Algorithm::kFairTorrent, "71.4%"},
      {Algorithm::kReputation, "22.2%"}, {Algorithm::kAltruism, "91.8%"},
  };
  for (const auto& row : core::bootstrap_table(params, 500)) {
    table.add_row({core::to_string(row.algorithm),
                   util::Table::pct(row.probability),
                   paper.at(row.algorithm)});
  }
  std::printf("%s", table.render().c_str());
}

void probability_vs_z() {
  BootstrapParams params;
  std::vector<std::pair<std::string, util::TimeSeries>> series;
  for (Algorithm a : core::kAllAlgorithms) {
    util::TimeSeries ts(core::to_string(a));
    for (std::int64_t z = 0; z <= 1000; z += 50) {
      ts.add(static_cast<double>(z),
             core::bootstrap_probability(a, params, z));
    }
    series.push_back({core::to_string(a), std::move(ts)});
  }
  bench::print_series_chart(
      "Bootstrap probability vs bootstrapped users z(t)", series,
      "z(t)", "p_B");
}

void expected_times() {
  BootstrapParams params;
  util::Table table("Expected slots until a flash crowd of P newcomers is "
                    "bootstrapped (eq. 10, dynamic z(t), z0 = 0)");
  table.set_header({"Algorithm", "P = 100", "P = 500", "P = 999"});
  for (Algorithm a : core::kAllAlgorithms) {
    std::vector<std::string> row = {core::to_string(a)};
    for (std::int64_t P : {100, 500, 999}) {
      row.push_back(util::Table::num(
          core::expected_bootstrap_time_dynamic(a, params, P, 0), 5));
    }
    table.add_row(row);
  }
  std::printf("\n%s", table.render().c_str());
  std::printf("Prop. 4 condition (eq. 14) at the example point: %s\n",
              core::altruism_beats_fairtorrent_condition(params)
                  ? "holds (altruism provably fastest)"
                  : "violated");
}

void sweeps() {
  util::Table k_sweep("Ablation: K (pieces per slot) vs p_B at z = 500");
  k_sweep.set_header({"K", "T-Chain", "FairTorrent", "Altruism"});
  for (std::int64_t K : {1, 2, 5, 10, 20}) {
    BootstrapParams params;
    params.pieces_per_slot = K;
    k_sweep.add_row(
        {std::to_string(K),
         util::Table::pct(core::bootstrap_probability(Algorithm::kTChain,
                                                      params, 500)),
         util::Table::pct(core::bootstrap_probability(
             Algorithm::kFairTorrent, params, 500)),
         util::Table::pct(core::bootstrap_probability(Algorithm::kAltruism,
                                                      params, 500))});
  }
  std::printf("\n%s", k_sweep.render().c_str());

  util::Table pidr("Ablation: pi_DR vs T-Chain p_B at z = 500 (with the "
                   "BitTorrent reference)");
  pidr.set_header({"pi_DR", "T-Chain p_B", "vs BitTorrent (39.6%)"});
  for (double pi : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    BootstrapParams params;
    params.pi_dr = pi;
    const double tc =
        core::bootstrap_probability(Algorithm::kTChain, params, 500);
    const double bt =
        core::bootstrap_probability(Algorithm::kBitTorrent, params, 500);
    pidr.add_row({util::Table::num(pi, 2), util::Table::pct(tc),
                  tc > bt ? "faster" : "slower"});
  }
  std::printf("\n%s", pidr.render().c_str());

  util::Table omega("Ablation: omega vs FairTorrent p_B at z = 500");
  omega.set_header({"omega", "FairTorrent p_B"});
  for (double w : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    BootstrapParams params;
    params.omega = w;
    omega.add_row({util::Table::num(w, 2),
                   util::Table::pct(core::bootstrap_probability(
                       Algorithm::kFairTorrent, params, 500))});
  }
  std::printf("\n%s", omega.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  (void)cli;
  example_column();
  probability_vs_z();
  expected_times();
  sweeps();
  return 0;
}
