// Shared scaffolding for the per-figure bench binaries: scenario scales,
// option parsing, and report-row rendering.
#pragma once

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "core/fluid_model.h"
#include "exp/journal.h"
#include "exp/runner.h"
#include "exp/schedule.h"
#include "exp/supervise.h"
#include "fleet/coordinator.h"
#include "fleet/options.h"
#include "fleet/worker.h"
#include "metrics/json.h"
#include "util/ascii_plot.h"
#include "util/atomic_file.h"
#include "util/cli.h"
#include "util/table.h"

namespace coopnet::bench {

/// Base swarm scenario selected by --scale={small,mid,paper}; paper is the
/// Section V-A setup (1000 peers, 128 MB file). Individual knobs are
/// overridable: --n, --file-mb, --seed, --max-time, --threads (intra-run
/// worker threads for the engine's batched prepare phase, DESIGN §11;
/// byte-identical results at any value, orthogonal to --jobs).
inline sim::SwarmConfig scenario_from_cli(const util::Cli& cli,
                                          const std::string& default_scale =
                                              "paper") {
  const std::string scale = cli.get_string("scale", default_scale);
  sim::SwarmConfig config;
  if (scale == "small") {
    config = sim::SwarmConfig::small(core::Algorithm::kBitTorrent);
  } else if (scale == "mid") {
    config = sim::SwarmConfig::paper_scale(core::Algorithm::kBitTorrent);
    config.n_peers = 300;
    config.file_bytes = 32LL * 1024 * 1024;
    config.graph.degree = 30;
  } else if (scale == "paper") {
    config = sim::SwarmConfig::paper_scale(core::Algorithm::kBitTorrent);
  } else {
    throw std::invalid_argument("unknown --scale (small|mid|paper)");
  }
  config.n_peers =
      cli.get_count("n", config.n_peers, sim::kMaxPeerCount);
  config.file_bytes =
      cli.get_int("file-mb", config.file_bytes / (1024 * 1024)) * 1024LL *
      1024LL;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  // Cap the run so pure reciprocity (which never completes) terminates.
  config.max_time = cli.get_double_in("max-time", 4000.0, 1e-6, 1e9);
  config.threads = cli.get_count("threads", 1, 256);
  return config;
}

/// Worker count selected by --jobs. Defaults to the hardware concurrency;
/// `--jobs 1` runs every sweep sequentially on the calling thread (results
/// are identical either way -- only the wall clock moves).
inline std::size_t jobs_from_cli(const util::Cli& cli) {
  const long jobs = cli.get_int("jobs", 0);
  if (jobs < 0) throw std::invalid_argument("--jobs must be >= 1");
  return jobs == 0 ? exp::default_jobs() : static_cast<std::size_t>(jobs);
}

/// Prints the per-sweep wall-clock/throughput line under a table, so the
/// --jobs speedup is visible in the artifact itself.
inline void print_sweep_timing(const exp::SweepTiming& timing) {
  std::printf("sweep wall-clock: %s\n", timing.to_string().c_str());
}

/// Renders a (time, value) series per algorithm as an ASCII chart.
inline void print_series_chart(
    const std::string& title,
    const std::vector<std::pair<std::string, util::TimeSeries>>& series,
    const std::string& x_label, const std::string& y_label) {
  std::vector<util::PlotSeries> plots;
  for (const auto& [name, ts] : series) {
    if (ts.empty()) continue;
    plots.push_back({name, ts.resample(64)});
  }
  std::printf("\n%s\n", title.c_str());
  std::printf("%s", util::line_chart(plots, 72, 18, x_label, y_label).c_str());
}

/// Renders per-algorithm CDFs (completion / bootstrap) as an ASCII chart.
inline void print_cdf_chart(
    const std::string& title,
    const std::vector<std::pair<std::string, std::vector<util::CdfPoint>>>&
        cdfs,
    const std::string& x_label) {
  std::vector<util::PlotSeries> plots;
  for (const auto& [name, cdf] : cdfs) {
    if (cdf.empty()) continue;
    util::PlotSeries s;
    s.name = name;
    for (std::size_t i = 0; i < cdf.size();
         i += std::max<std::size_t>(1, cdf.size() / 64)) {
      s.points.push_back({cdf[i].x, cdf[i].fraction});
    }
    s.points.push_back({cdf.back().x, cdf.back().fraction});
    plots.push_back(std::move(s));
  }
  std::printf("\n%s\n", title.c_str());
  std::printf("%s",
              util::line_chart(plots, 72, 18, x_label, "fraction").c_str());
}

/// The Figure 4/5/6 cell schedule: one cell per algorithm over `base`
/// (free-rider population expanded when configured). Deterministic in
/// `base`, so a fleet coordinator and its workers build identical
/// schedules from the same flags.
inline std::vector<sim::SwarmConfig> figure_suite_cells(
    const sim::SwarmConfig& base) {
  std::vector<sim::SwarmConfig> cells;
  for (core::Algorithm algo : core::kAllAlgorithms) {
    sim::SwarmConfig config = base;
    config.algorithm = algo;
    if (config.free_rider_fraction > 0.0) {
      const bool large = config.attack.large_view;
      config = exp::with_freeriders(config, config.free_rider_fraction,
                                    large);
    }
    cells.push_back(config);
  }
  return cells;
}

/// Runs all six algorithms over a scenario and prints the Figure 4/5/6
/// artifact set: susceptibility (when free-riders are present), the
/// completion-time CDFs (efficiency), the fairness-vs-time series, and the
/// bootstrap CDFs. Returns the reports for further rendering.
inline std::vector<metrics::RunReport> run_figure_suite(
    const sim::SwarmConfig& base, bool with_susceptibility,
    std::size_t jobs = 1) {
  const std::vector<sim::SwarmConfig> cells = figure_suite_cells(base);
  std::fprintf(stderr, "  running %zu algorithms (jobs=%zu)...\n",
               cells.size(), jobs == 0 ? exp::default_jobs() : jobs);
  exp::SweepTiming timing;
  const std::vector<metrics::RunReport> reports =
      exp::run_cells(cells, jobs, &timing);

  util::Table table("Per-algorithm summary");
  table.set_header({"Algorithm", "finished", "mean compl. (s)",
                    "median compl. (s)", "boot median (s)",
                    "settled fairness (u/d)", "fairness F",
                    "susceptibility"});
  for (const auto& r : reports) {
    table.add_row(
        {core::to_string(r.algorithm),
         std::to_string(r.completion_times.size()) + "/" +
             std::to_string(r.compliant_population),
         r.completion_times.empty()
             ? "-"
             : util::Table::num(r.completion_summary.mean, 5),
         r.completion_times.empty()
             ? "-"
             : util::Table::num(r.completion_summary.median, 5),
         r.bootstrap_times.empty()
             ? "-"
             : util::Table::num(r.bootstrap_summary.median, 4),
         r.settled_fairness < 0.0
             ? "-"
             : util::Table::num(r.settled_fairness, 4),
         r.final_fairness_F < 0.0
             ? "-"
             : util::Table::num(r.final_fairness_F, 4),
         with_susceptibility ? util::Table::pct(r.susceptibility) : "-"});
  }
  std::printf("%s", table.render().c_str());
  print_sweep_timing(timing);

  if (with_susceptibility) {
    std::vector<std::pair<std::string, double>> bars;
    for (const auto& r : reports) {
      bars.push_back({core::to_string(r.algorithm), r.susceptibility});
    }
    std::printf("\n(a) Susceptibility: fraction of users' upload bandwidth "
                "captured by free-riders\n%s",
                util::bar_chart(bars).c_str());
  }

  std::vector<std::pair<std::string, std::vector<util::CdfPoint>>> completion_cdfs;
  for (const auto& r : reports) {
    completion_cdfs.push_back({core::to_string(r.algorithm),
                     metrics::completion_cdf(r)});
  }
  print_cdf_chart("(b) Efficiency: download completion-time CDF "
                  "(reciprocity flat at 0 -- nobody finishes)",
                  completion_cdfs, "seconds since arrival");

  std::vector<std::pair<std::string, util::TimeSeries>> fairness;
  for (const auto& r : reports) {
    fairness.push_back({core::to_string(r.algorithm), r.fairness_series});
  }
  print_series_chart("(c) Fairness: mean u/d over compliant peers vs time",
                     fairness, "seconds", "mean u/d");

  std::vector<std::pair<std::string, std::vector<util::CdfPoint>>> boots;
  for (const auto& r : reports) {
    boots.push_back({core::to_string(r.algorithm),
                     metrics::bootstrap_cdf(r)});
  }
  print_cdf_chart("(d) Bootstrapping: time-to-first-piece CDF", boots,
                  "seconds since arrival");
  return reports;
}

/// Opens the journal/resume pair for a supervised sweep and reports the
/// resume coverage on stderr.
inline exp::SweepJournal open_journal_from_cli(
    const exp::SweepControl& control, std::size_t cells,
    std::uint64_t base_seed) {
  exp::SweepJournal sj = exp::open_sweep_journal(control, cells, base_seed);
  if (sj.resume != nullptr) {
    std::fprintf(stderr, "  resume: %zu of %zu cells journaled in %s%s\n",
                 sj.resume->size(), cells, control.resume_path.c_str(),
                 sj.resume->torn_lines() > 0 ? " (torn trailing line dropped)"
                                             : "");
  }
  return sj;
}

/// The fleet worker's preemption flag: SIGTERM/SIGINT set it, the
/// per-cell guard polls it, and the worker parts gracefully (final
/// snapshot + BYE) instead of dying with the lease held.
inline std::atomic<bool>& fleet_worker_cancel_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

inline void fleet_worker_on_signal(int) {
  fleet_worker_cancel_flag().store(true, std::memory_order_relaxed);
}

/// Runs this process as a fleet worker over the given deterministic cell
/// schedule and returns the process exit code. Workers render no tables:
/// they stream journal record lines to the coordinator, which owns the
/// merged artifacts. `checkpoint_every` > 0 (the worker's
/// --checkpoint-every) ships mid-cell snapshots to the coordinator and
/// resumes cells from coordinator-shipped snapshots (DESIGN §13).
inline int run_fleet_worker(const std::vector<sim::SwarmConfig>& cells,
                            std::uint64_t base_seed,
                            const fleet::FleetControl& fleet,
                            exp::Supervision supervision,
                            double checkpoint_every = 0.0) {
  supervision.cancel = &fleet_worker_cancel_flag();
  std::signal(SIGTERM, fleet_worker_on_signal);
  std::signal(SIGINT, fleet_worker_on_signal);
  std::fprintf(stderr,
               "  fleet worker '%s' connecting to %s:%u (%zu cells in "
               "schedule)...\n",
               fleet.worker_name.c_str(), fleet.host.c_str(),
               static_cast<unsigned>(fleet.port), cells.size());
  fleet::FleetWorker worker(cells, base_seed, fleet, supervision,
                            checkpoint_every);
  const fleet::WorkerStats stats = worker.run();
  std::printf(
      "fleet worker '%s': ran %zu cell(s) over %zu lease(s), "
      "%zu reconnect(s)\n",
      fleet.worker_name.c_str(), stats.cells_run, stats.leases_received,
      stats.reconnects);
  if (stats.cells_resumed > 0) {
    // The kill/restore CI gate parses this line: replayed events must be
    // a small fraction of the events the snapshots carried in.
    std::printf(
        "fleet worker '%s': resumed %zu cell(s) from snapshots "
        "(replayed %llu events on top of %llu restored)\n",
        fleet.worker_name.c_str(), stats.cells_resumed,
        static_cast<unsigned long long>(stats.events_replayed),
        static_cast<unsigned long long>(stats.events_restored));
  }
  if (stats.preempted) {
    std::fprintf(stderr,
                 "  fleet worker '%s' preempted (SIGTERM); final snapshot "
                 "shipped, unfinished cells re-lease elsewhere\n",
                 fleet.worker_name.c_str());
  }
  return 0;
}

/// Serves a sweep as the fleet coordinator over an already-opened
/// journal (the coordinator's crash-recovery log) and returns the merged
/// result -- byte-identical artifacts to a local run_cells_supervised
/// sweep of the same cells.
inline exp::SweepResult serve_fleet_coordinator(
    const std::vector<sim::SwarmConfig>& cells, std::uint64_t base_seed,
    const fleet::FleetControl& fleet, exp::SweepJournal& sj) {
  if (sj.journal == nullptr) {
    throw std::invalid_argument(
        "--fleet-listen requires --journal FILE: the journal is the "
        "coordinator's crash-recovery log and the source of the merged "
        "artifacts (restart with --resume FILE to pick a partial fleet "
        "sweep back up)");
  }
  fleet::FleetCoordinator coordinator(cells, base_seed, fleet,
                                      sj.journal.get(), sj.resume.get());
  std::fprintf(stderr,
               "  fleet coordinator listening on %s:%u (%zu cells, "
               "%zu already journaled)...\n",
               fleet.host.c_str(), static_cast<unsigned>(coordinator.port()),
               cells.size(), sj.resume ? sj.resume->size() : 0);
  const exp::SweepResult sweep = coordinator.serve();
  const fleet::CoordinatorStats& fs = coordinator.stats();
  std::fprintf(stderr,
               "  fleet: %zu worker(s) joined, %zu lost, %zu lease(s) "
               "granted, %zu expired, %llu cell reassignment(s), "
               "%zu abandoned, %zu duplicate result(s)\n",
               fs.workers_joined, fs.workers_lost, fs.leases_granted,
               fs.leases_expired,
               static_cast<unsigned long long>(fs.cells_reassigned),
               fs.cells_abandoned, fs.duplicate_results);
  if (fs.snapshots_received > 0 || fs.snapshots_shipped > 0) {
    std::fprintf(stderr,
                 "  fleet: %zu snapshot(s) received, %zu handed to new "
                 "lessees\n",
                 fs.snapshots_received, fs.snapshots_shipped);
  }
  return sweep;
}

/// Prints the quarantine report for a degraded sweep (no-op when every
/// cell is ok).
inline void print_degraded_coverage(const exp::SweepResult& sweep) {
  if (sweep.complete()) return;
  std::printf("\ndegraded coverage: %zu of %zu cells did not complete\n%s",
              sweep.outcomes.size() -
                  sweep.count(exp::CellOutcome::Status::kOk),
              sweep.outcomes.size(), sweep.degradation_summary().c_str());
}

/// Machine-readable dumps for a supervised sweep: --json prints the
/// merged per-cell array (null for non-ok cells; byte-identical to the
/// unsupervised dump when all cells are ok), --json-out writes the same
/// bytes crash-safely.
inline void maybe_dump_supervised_json(const util::Cli& cli,
                                       const exp::SweepResult& sweep) {
  if (cli.has("json")) {
    std::printf("\n--- JSON ---\n%s\n", sweep.merged_json().c_str());
  }
  if (cli.has("json-out")) {
    util::write_file_atomic(cli.get_string("json-out", ""),
                            sweep.merged_json() + "\n");
  }
}

/// Supervised variant of run_figure_suite: same cells and rendering, but
/// each algorithm runs under the per-cell watchdogs, failures are
/// quarantined into their table row instead of aborting, and outcomes are
/// journaled/resumed per `control`. Charts cover the cells that ran to
/// completion in this process (journal-resumed cells carry scalar metrics
/// only).
inline exp::SweepResult run_figure_suite_supervised(
    const sim::SwarmConfig& base, bool with_susceptibility, std::size_t jobs,
    const exp::SweepControl& control,
    const fleet::FleetControl* fleet = nullptr) {
  const std::vector<sim::SwarmConfig> cells = figure_suite_cells(base);
  exp::SweepJournal sj =
      open_journal_from_cli(control, cells.size(), base.seed);
  std::fprintf(stderr,
               "  running %zu algorithms under supervision (jobs=%zu)...\n",
               cells.size(), jobs == 0 ? exp::default_jobs() : jobs);
  const exp::SweepResult sweep =
      (fleet != nullptr && fleet->coordinator())
          ? serve_fleet_coordinator(cells, base.seed, *fleet, sj)
          : exp::run_cells_supervised(cells, jobs, control.supervision,
                                      sj.journal.get(), sj.resume.get(),
                                      control.checkpoint);

  util::Table table("Per-algorithm summary (supervised)");
  table.set_header({"Algorithm", "status", "finished", "mean compl. (s)",
                    "median compl. (s)", "boot median (s)",
                    "settled fairness (u/d)", "fairness F",
                    "susceptibility"});
  for (const auto& o : sweep.outcomes) {
    if (!o.has_report) {
      table.add_row({o.algorithm, to_string(o.status), "-", "-", "-", "-",
                     "-", "-", "-"});
      continue;
    }
    const metrics::RunReport& r = o.report;
    table.add_row(
        {o.algorithm,
         o.from_journal ? "ok (journal)" : to_string(o.status),
         std::to_string(r.completion_times.size()) + "/" +
             std::to_string(r.compliant_population),
         r.completion_times.empty()
             ? "-"
             : util::Table::num(r.completion_summary.mean, 5),
         r.completion_times.empty()
             ? "-"
             : util::Table::num(r.completion_summary.median, 5),
         r.bootstrap_times.empty()
             ? "-"
             : util::Table::num(r.bootstrap_summary.median, 4),
         r.settled_fairness < 0.0
             ? "-"
             : util::Table::num(r.settled_fairness, 4),
         r.final_fairness_F < 0.0
             ? "-"
             : util::Table::num(r.final_fairness_F, 4),
         with_susceptibility ? util::Table::pct(r.susceptibility) : "-"});
  }
  std::printf("%s", table.render().c_str());
  print_sweep_timing(sweep.timing);
  print_degraded_coverage(sweep);

  if (with_susceptibility) {
    std::vector<std::pair<std::string, double>> bars;
    for (const auto& o : sweep.outcomes) {
      if (o.has_report) bars.push_back({o.algorithm, o.report.susceptibility});
    }
    std::printf("\n(a) Susceptibility: fraction of users' upload bandwidth "
                "captured by free-riders\n%s",
                util::bar_chart(bars).c_str());
  }

  // Series charts need the full report; journal-resumed cells only carry
  // scalars, so chart what ran in this process.
  std::vector<const metrics::RunReport*> fresh;
  for (const auto& o : sweep.outcomes) {
    if (o.ok() && !o.from_journal) fresh.push_back(&o.report);
  }
  if (fresh.size() < sweep.outcomes.size()) {
    std::printf("\n(charts cover the %zu cells run in this process; "
                "resumed/failed cells are tabulated above)\n",
                fresh.size());
  }
  if (!fresh.empty()) {
    std::vector<std::pair<std::string, std::vector<util::CdfPoint>>> cdfs;
    for (const auto* r : fresh) {
      cdfs.push_back({core::to_string(r->algorithm),
                      metrics::completion_cdf(*r)});
    }
    print_cdf_chart("(b) Efficiency: download completion-time CDF "
                    "(reciprocity flat at 0 -- nobody finishes)",
                    cdfs, "seconds since arrival");

    std::vector<std::pair<std::string, util::TimeSeries>> fairness;
    for (const auto* r : fresh) {
      fairness.push_back({core::to_string(r->algorithm), r->fairness_series});
    }
    print_series_chart("(c) Fairness: mean u/d over compliant peers vs time",
                       fairness, "seconds", "mean u/d");

    std::vector<std::pair<std::string, std::vector<util::CdfPoint>>> boots;
    for (const auto* r : fresh) {
      boots.push_back({core::to_string(r->algorithm),
                       metrics::bootstrap_cdf(*r)});
    }
    print_cdf_chart("(d) Bootstrapping: time-to-first-piece CDF", boots,
                    "seconds since arrival");
  }
  return sweep;
}

/// Optional machine-readable dumps: --csv (long-form series), --json
/// (full RunReport array on stdout), and --json-out FILE (same array
/// written crash-safely via temp-file + atomic rename).
inline void maybe_dump_csv(const util::Cli& cli,
                           const std::vector<metrics::RunReport>& reports) {
  if (cli.has("json")) {
    std::printf("\n--- JSON ---\n%s\n",
                metrics::to_json(reports).c_str());
  }
  if (cli.has("json-out")) {
    util::write_file_atomic(cli.get_string("json-out", ""),
                            metrics::to_json(reports) + "\n");
  }
  if (!cli.has("csv")) return;
  std::printf("\n--- CSV: fairness series ---\nalgorithm,time,value\n");
  for (const auto& r : reports) {
    for (const auto& p : r.fairness_series.points()) {
      std::printf("%s,%g,%g\n", core::to_string(r.algorithm).c_str(),
                  p.time, p.value);
    }
  }
  std::printf("\n--- CSV: completion times ---\nalgorithm,seconds\n");
  for (const auto& r : reports) {
    for (double t : r.completion_times) {
      std::printf("%s,%g\n", core::to_string(r.algorithm).c_str(), t);
    }
  }
  std::printf("\n--- CSV: bootstrap times ---\nalgorithm,seconds\n");
  for (const auto& r : reports) {
    for (double t : r.bootstrap_times) {
      std::printf("%s,%g\n", core::to_string(r.algorithm).c_str(), t);
    }
  }
}

/// Fluid-model predictions for the same scenario: per-algorithm mean
/// finish times from the mean-field Table I drain, printed next to the
/// simulated means (the analytic counterpart of Figure 4a).
inline void print_fluid_overlay(
    const sim::SwarmConfig& base,
    const std::vector<metrics::RunReport>& reports) {
  // Convert the configured capacity mix into fluid classes.
  std::vector<core::FluidClass> classes;
  for (const auto& c : base.capacities.classes()) {
    classes.push_back(
        {c.rate, c.fraction * static_cast<double>(base.n_peers)});
  }
  core::FluidParams params;
  params.file_bytes = static_cast<double>(base.file_bytes);
  params.seeder_rate =
      base.seeder_capacity * static_cast<double>(base.seeder_count);
  params.model.alpha_bt = 0.2;
  params.model.alpha_r = base.alpha_r;
  params.dt = 1.0;
  params.max_time = base.max_time;

  util::Table table("Fluid-model check: mean completion predicted by the "
                    "Table I mean-field drain vs simulated");
  table.set_header({"Algorithm", "fluid mean (s)", "simulated mean (s)",
                    "ratio sim/fluid"});
  for (const auto& r : reports) {
    const auto fluid =
        core::fluid_completion(r.algorithm, classes, params);
    const bool fluid_finite = std::isfinite(fluid.mean_finish_time);
    const bool sim_finished = !r.completion_times.empty();
    table.add_row(
        {core::to_string(r.algorithm),
         fluid_finite ? util::Table::num(fluid.mean_finish_time, 5)
                      : "never",
         sim_finished ? util::Table::num(r.completion_summary.mean, 5)
                      : "never",
         (fluid_finite && sim_finished)
             ? util::Table::num(
                   r.completion_summary.mean / fluid.mean_finish_time, 3)
             : "-"});
  }
  std::printf("\n%s", table.render().c_str());
}

}  // namespace coopnet::bench
