// Figure 5 -- performance with 20% free-riders mounting each algorithm's
// most effective attack (Section V-B2): (a) susceptibility, (b) efficiency,
// (c) fairness. Attacks: plain free-riding everywhere, plus collusion vs
// T-Chain, whitewashing vs FairTorrent, sybil praise vs reputation.
//
// Supervised-sweep flags (--cell-timeout, --event-budget, --journal,
// --resume) quarantine failing cells; exit code 3 flags degraded coverage.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace coopnet;
  const util::Cli cli(argc, argv);
  try {
    auto config = bench::scenario_from_cli(cli);
    config.free_rider_fraction =
        cli.get_double_in("free-riders", 0.2, 0.0, 1.0);
    config.attack.large_view = false;
    const exp::SweepControl control = exp::sweep_control_from_cli(cli);
    const fleet::FleetControl fleet = fleet::fleet_control_from_cli(cli);
    if (fleet.worker()) {
      return bench::run_fleet_worker(bench::figure_suite_cells(config),
                                     config.seed, fleet, control.supervision,
                                     control.checkpoint.every);
    }

    std::printf("Figure 5: %.0f%% free-riders with targeted attacks, N = %zu, "
                "file = %lld MiB, seed = %llu\n\n",
                config.free_rider_fraction * 100.0, config.n_peers,
                static_cast<long long>(config.file_bytes / (1024 * 1024)),
                static_cast<unsigned long long>(config.seed));
    if (control.active() || fleet.active()) {
      const exp::SweepResult sweep = bench::run_figure_suite_supervised(
          config, /*with_susceptibility=*/true, bench::jobs_from_cli(cli),
          control, &fleet);
      bench::maybe_dump_supervised_json(cli, sweep);
      return sweep.complete() ? 0 : 3;
    }
    const auto reports = bench::run_figure_suite(
        config, /*with_susceptibility=*/true, bench::jobs_from_cli(cli));

    std::printf(
        "\nExpected shape (Fig. 5): susceptibility ~0 for reciprocity and "
        "T-Chain;\naltruism and (sybil-attacked) reputation highest; "
        "BitTorrent and FairTorrent\nin between. Efficiency and fairness of "
        "the susceptible algorithms degrade\nrelative to Fig. 4; T-Chain "
        "barely moves.\n");
    bench::maybe_dump_csv(cli, reports);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig5_freeriders: %s\n", e.what());
    return 1;
  }
}
