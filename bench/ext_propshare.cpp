// Extension bench (not a paper artifact): PropShare [ref. 5] vs BitTorrent.
//
// The paper's Related Work notes PropShare/BitTyrant as attempts to reduce
// BitTorrent's free-riding. This bench quantifies that within our
// framework: head-to-head efficiency, fairness, bootstrap, and
// susceptibility, plus a free-rider-fraction sweep.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace coopnet;
  const util::Cli cli(argc, argv);
  auto base = bench::scenario_from_cli(cli);
  if (!cli.has("scale") && !cli.has("n")) {
    base.n_peers = 300;  // mid scale by default; this is an ablation
    base.file_bytes = 32LL * 1024 * 1024;
    base.graph.degree = 30;
  }

  std::printf("Extension: PropShare (proportional-share reciprocity) vs "
              "BitTorrent, N = %zu\n\n", base.n_peers);

  // One batch: 2 head-to-head cells followed by the 4x2 free-rider sweep.
  const std::vector<core::Algorithm> pair = {core::Algorithm::kBitTorrent,
                                             core::Algorithm::kPropShare};
  const std::vector<double> fractions = {0.1, 0.2, 0.3, 0.4};
  std::vector<sim::SwarmConfig> cells;
  for (core::Algorithm algo : pair) {
    auto config = base;
    config.algorithm = algo;
    cells.push_back(config);
  }
  for (double f : fractions) {
    for (core::Algorithm algo : pair) {
      auto config = base;
      config.algorithm = algo;
      config.free_rider_fraction = f;
      cells.push_back(config);
    }
  }
  exp::SweepTiming timing;
  const auto reports =
      exp::run_cells(cells, bench::jobs_from_cli(cli), &timing);

  util::Table table("Head-to-head (no free-riders)");
  table.set_header({"Mechanism", "mean compl. (s)", "fairness F",
                    "boot median (s)"});
  for (std::size_t i = 0; i < pair.size(); ++i) {
    const auto& r = reports[i];
    table.add_row({core::to_string(pair[i]),
                   util::Table::num(r.completion_summary.mean, 5),
                   util::Table::num(r.final_fairness_F, 4),
                   util::Table::num(r.bootstrap_summary.median, 4)});
  }
  std::printf("%s", table.render().c_str());

  util::Table sweep("Susceptibility vs free-rider fraction (plain "
                    "free-riding)");
  sweep.set_header({"free-riders", "BitTorrent", "PropShare"});
  std::size_t cell = pair.size();
  for (double f : fractions) {
    std::vector<std::string> row = {util::Table::pct(f, 0)};
    for (std::size_t a = 0; a < pair.size(); ++a) {
      row.push_back(util::Table::pct(reports[cell++].susceptibility));
    }
    sweep.add_row(row);
  }
  std::printf("\n%s", sweep.render().c_str());
  bench::print_sweep_timing(timing);
  std::printf(
      "\nExpected shape: PropShare matches BitTorrent's efficiency tier "
      "while being\nat least as fair (proportional response) and leaking "
      "no more than the\nalpha_BT altruism budget to free-riders.\n");
  return 0;
}
