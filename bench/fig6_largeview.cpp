// Figure 6 -- Figure 5's free-riding attacks plus the large-view exploit:
// free-riders connect to several times more neighbors than compliant peers
// (default 4x; --view-mult to sweep).
//
// Supervised-sweep flags (--cell-timeout, --event-budget, --journal,
// --resume) quarantine failing cells; exit code 3 flags degraded coverage.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace coopnet;
  const util::Cli cli(argc, argv);
  try {
    auto config = bench::scenario_from_cli(cli);
    config.free_rider_fraction =
        cli.get_double_in("free-riders", 0.2, 0.0, 1.0);
    config.attack.large_view = true;
    config.graph.large_view_multiplier =
        cli.get_double_in("view-mult", 4.0, 1.0, 100.0);
    const exp::SweepControl control = exp::sweep_control_from_cli(cli);
    const fleet::FleetControl fleet = fleet::fleet_control_from_cli(cli);
    if (fleet.worker()) {
      return bench::run_fleet_worker(bench::figure_suite_cells(config),
                                     config.seed, fleet, control.supervision,
                                     control.checkpoint.every);
    }

    std::printf("Figure 6: %.0f%% free-riders, targeted attacks + large-view "
                "exploit (%gx neighbors), N = %zu, seed = %llu\n\n",
                config.free_rider_fraction * 100.0,
                config.graph.large_view_multiplier, config.n_peers,
                static_cast<unsigned long long>(config.seed));
    const std::size_t jobs = bench::jobs_from_cli(cli);
    if (control.active() || fleet.active()) {
      const exp::SweepResult sweep = bench::run_figure_suite_supervised(
          config, /*with_susceptibility=*/true, jobs, control, &fleet);
      bench::maybe_dump_supervised_json(cli, sweep);
      return sweep.complete() ? 0 : 3;
    }
    const auto reports =
        bench::run_figure_suite(config, /*with_susceptibility=*/true, jobs);

    std::printf(
        "\nExpected shape (Fig. 6): susceptibility rises vs Fig. 5 for the "
        "algorithms\nthat ration their leak per neighborhood (T-Chain, "
        "BitTorrent, FairTorrent);\naltruism/reputation were already handing "
        "free-riders their full demand share.\nT-Chain stays ~1%% and is now "
        "visibly more efficient and fair than the\nsusceptible hybrids.\n");
    bench::maybe_dump_csv(cli, reports);

    if (cli.has("sweep-view")) {
      std::printf("\nAblation: large-view multiplier vs susceptibility "
                  "(BitTorrent)\n");
      util::Table table("");
      table.set_header({"multiplier", "susceptibility"});
      const std::vector<double> mults = {1.0, 2.0, 4.0, 8.0};
      std::vector<sim::SwarmConfig> cells;
      for (double mult : mults) {
        auto c = config;
        c.algorithm = core::Algorithm::kBitTorrent;
        c.graph.large_view_multiplier = mult;
        c = exp::with_freeriders(c, c.free_rider_fraction, mult > 1.0);
        cells.push_back(c);
      }
      exp::SweepTiming timing;
      const auto sweep = exp::run_cells(cells, jobs, &timing);
      for (std::size_t i = 0; i < mults.size(); ++i) {
        table.add_row({util::Table::num(mults[i], 2),
                       util::Table::pct(sweep[i].susceptibility)});
      }
      std::printf("%s", table.render().c_str());
      bench::print_sweep_timing(timing);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig6_largeview: %s\n", e.what());
    return 1;
  }
}
