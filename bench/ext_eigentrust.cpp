// Extension bench (not a paper artifact): EigenTrust-backed reputation vs
// the paper's global-ledger reputation under the sybil-praise attack --
// quantifying footnote 6 ("more sophisticated reputation schemes that
// consider users' trustworthiness [4] can circumvent such false praise").
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace coopnet;
  const util::Cli cli(argc, argv);
  auto base = bench::scenario_from_cli(cli);
  if (!cli.has("scale") && !cli.has("n")) {
    base.n_peers = 300;
    base.file_bytes = 32LL * 1024 * 1024;
    base.graph.degree = 30;
  }
  base.algorithm = core::Algorithm::kReputation;

  std::printf("Extension: reputation backends under sybil praise "
              "(footnote 6), N = %zu\n\n", base.n_peers);

  util::Table table("Susceptibility: 20% free-riders, with and without "
                    "sybil praise");
  table.set_header({"backend", "plain free-riding", "+ sybil praise",
                    "mean compl. (s, honest swarm)"});
  for (auto mode : {sim::ReputationMode::kGlobalLedger,
                    sim::ReputationMode::kEigenTrust}) {
    const char* name = mode == sim::ReputationMode::kEigenTrust
                           ? "EigenTrust [4]"
                           : "global ledger (paper Sec. V-A)";
    std::vector<std::string> row = {name};
    for (bool sybil : {false, true}) {
      auto config = base;
      config.reputation_mode = mode;
      config.free_rider_fraction = 0.2;
      config.attack.sybil_praise = sybil;
      row.push_back(
          util::Table::pct(exp::run_scenario(config).susceptibility));
    }
    auto honest = base;
    honest.reputation_mode = mode;
    row.push_back(util::Table::num(
        exp::run_scenario(honest).completion_summary.mean, 5));
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nExpected shape: sybil praise multiplies the ledger backend's leak "
      "several\ntimes over (forged reports enter the score directly) but "
      "leaves the\nEigenTrust backend untouched (trust is grounded in "
      "received service and\nanchored at the seeders), at comparable "
      "honest-swarm efficiency.\n");
  return 0;
}
