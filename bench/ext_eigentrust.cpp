// Extension bench (not a paper artifact): EigenTrust-backed reputation vs
// the paper's global-ledger reputation under the sybil-praise attack --
// quantifying footnote 6 ("more sophisticated reputation schemes that
// consider users' trustworthiness [4] can circumvent such false praise").
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace coopnet;
  const util::Cli cli(argc, argv);
  auto base = bench::scenario_from_cli(cli);
  if (!cli.has("scale") && !cli.has("n")) {
    base.n_peers = 300;
    base.file_bytes = 32LL * 1024 * 1024;
    base.graph.degree = 30;
  }
  base.algorithm = core::Algorithm::kReputation;

  std::printf("Extension: reputation backends under sybil praise "
              "(footnote 6), N = %zu\n\n", base.n_peers);

  util::Table table("Susceptibility: 20% free-riders, with and without "
                    "sybil praise");
  table.set_header({"backend", "plain free-riding", "+ sybil praise",
                    "mean compl. (s, honest swarm)"});
  // 3 cells per backend: plain free-riding, + sybil praise, honest swarm.
  const std::vector<sim::ReputationMode> modes = {
      sim::ReputationMode::kGlobalLedger, sim::ReputationMode::kEigenTrust};
  std::vector<sim::SwarmConfig> cells;
  for (auto mode : modes) {
    for (bool sybil : {false, true}) {
      auto config = base;
      config.reputation_mode = mode;
      config.free_rider_fraction = 0.2;
      config.attack.sybil_praise = sybil;
      cells.push_back(config);
    }
    auto honest = base;
    honest.reputation_mode = mode;
    cells.push_back(honest);
  }
  exp::SweepTiming timing;
  const auto reports =
      exp::run_cells(cells, bench::jobs_from_cli(cli), &timing);
  for (std::size_t m = 0; m < modes.size(); ++m) {
    const char* name = modes[m] == sim::ReputationMode::kEigenTrust
                           ? "EigenTrust [4]"
                           : "global ledger (paper Sec. V-A)";
    const std::size_t at = m * 3;
    table.add_row(
        {name, util::Table::pct(reports[at].susceptibility),
         util::Table::pct(reports[at + 1].susceptibility),
         util::Table::num(reports[at + 2].completion_summary.mean, 5)});
  }
  std::printf("%s", table.render().c_str());
  bench::print_sweep_timing(timing);
  std::printf(
      "\nExpected shape: sybil praise multiplies the ledger backend's leak "
      "several\ntimes over (forged reports enter the score directly) but "
      "leaves the\nEigenTrust backend untouched (trust is grounded in "
      "received service and\nanchored at the seeders), at comparable "
      "honest-swarm efficiency.\n");
  return 0;
}
