// Figure 2 -- fairness and efficiency ranking of the six algorithms in the
// idealized (perfect piece availability) equilibrium, per Corollary 1.
//
// Output: eq. 2 efficiency and eq. 3 fairness per algorithm for the paper's
// heterogeneous population, the Lemma 1 optimum as the reference line, bar
// charts of both metrics, and alpha sweeps (ablations for the altruism
// shares of BitTorrent and the reputation algorithm).
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/capacity.h"
#include "core/fairness_efficiency.h"
#include "core/reputation_model.h"

namespace {

using namespace coopnet;
using core::Algorithm;

std::string fmt_or_inf(double v, int precision = 4) {
  if (std::isinf(v)) return "inf (never finishes)";
  return util::Table::num(v, precision);
}

void ranking(const std::vector<double>& caps,
             const core::ModelParams& params) {
  const auto perf = core::ideal_performance(caps, params);
  const double optimal = core::optimal_efficiency(caps, params);

  util::Table table("Figure 2: idealized fairness/efficiency (lower = "
                    "better for both; eq. 2 / eq. 3)");
  table.set_header({"Algorithm", "efficiency E", "E / optimal",
                    "fairness F"});
  for (const auto& row : perf) {
    table.add_row({core::to_string(row.algorithm),
                   fmt_or_inf(row.efficiency),
                   std::isinf(row.efficiency)
                       ? "-"
                       : util::Table::num(row.efficiency / optimal, 4),
                   fmt_or_inf(row.fairness)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("Lemma 1 optimal efficiency: %.6g (no algorithm attains it)\n",
              optimal);

  std::vector<std::pair<std::string, double>> eff_bars, fair_bars;
  for (const auto& row : perf) {
    if (!std::isinf(row.efficiency)) {
      eff_bars.push_back({core::to_string(row.algorithm), row.efficiency});
    }
    if (!std::isinf(row.fairness)) {
      fair_bars.push_back({core::to_string(row.algorithm), row.fairness});
    }
  }
  std::printf("\nEfficiency E (shorter bar = faster downloads):\n%s",
              util::bar_chart(eff_bars).c_str());
  std::printf("\nFairness F (shorter bar = more fair):\n%s",
              util::bar_chart(fair_bars).c_str());
  std::printf(
      "\nExpected shape (Cor. 1): altruism most efficient & least fair;\n"
      "T-Chain and FairTorrent exactly fair; BitTorrent & reputation more\n"
      "efficient than T-Chain/FairTorrent; reciprocity degenerate.\n");
}

void alpha_sweeps(const std::vector<double>& caps) {
  util::Table bt("Ablation: alpha_BT vs BitTorrent's idealized metrics");
  bt.set_header({"alpha_BT", "efficiency E", "fairness F"});
  for (double alpha : {0.0, 0.1, 0.2, 0.4, 0.8, 1.0}) {
    core::ModelParams params;
    params.alpha_bt = alpha;
    const auto rates =
        core::equilibrium_rates(Algorithm::kBitTorrent, caps, params);
    bt.add_row({util::Table::num(alpha, 2),
                util::Table::num(core::efficiency(rates.download), 5),
                util::Table::num(
                    core::fairness_F(rates.download, rates.upload), 4)});
  }
  std::printf("\n%s", bt.render().c_str());

  util::Table rep("Ablation: alpha_R vs reputation's idealized metrics");
  rep.set_header({"alpha_R", "efficiency E", "fairness F"});
  for (double alpha : {0.0, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    core::ModelParams params;
    params.alpha_r = alpha;
    const auto rates =
        core::equilibrium_rates(Algorithm::kReputation, caps, params);
    rep.add_row({util::Table::num(alpha, 2),
                 util::Table::num(core::efficiency(rates.download), 5),
                 util::Table::num(
                     core::fairness_F(rates.download, rates.upload), 4)});
  }
  std::printf("\n%s", rep.render().c_str());
}

void proposition3(const std::vector<double>& caps, util::Rng& rng) {
  // Prop. 3: once reputations decouple from capacity, the reputation
  // algorithm's fairness AND efficiency both degrade -- the effect behind
  // Fig. 4b's late-run fairness drop.
  util::Table table("Proposition 3: reputation-capacity misalignment vs "
                    "fairness/efficiency");
  table.set_header({"reputation vector", "fairness F", "efficiency E"});

  auto row = [&](const std::string& name, const std::vector<double>& r) {
    const auto eq = core::reputation_equilibrium(r, caps);
    table.add_row({name, util::Table::num(eq.fairness, 4),
                   util::Table::num(eq.efficiency, 5)});
  };
  row("proportional to capacity (ideal)",
      core::proportional_reputations(caps));

  std::vector<double> noisy = caps;
  for (double& v : noisy) v *= rng.uniform(0.5, 1.5);
  row("capacity x uniform(0.5, 1.5) noise", noisy);

  std::vector<double> inverted(caps.rbegin(), caps.rend());
  row("fully inverted (slowest most reputed)", inverted);

  std::vector<double> one_underrated = caps;
  one_underrated.front() /= 100.0;  // high-capacity user, tiny reputation
  row("fastest user underrated 100x", one_underrated);

  std::printf("\n%s", table.render().c_str());
  std::printf(
      "Expected shape: fairness F degrades with misalignment (inversion is "
      "worst);\nefficiency E degrades when the reputation *distribution* "
      "narrows or widens\n(noise row) but is permutation-invariant -- and "
      "a single underrated user's\nhuge personal unfairness dilutes in the "
      "N-user average F, which is exactly\nwhy Prop. 3 spells out the "
      "per-user form.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 7)));
  const auto caps = core::sorted_descending(
      core::CapacityDistribution::default_mix().sample(
          static_cast<std::size_t>(cli.get_int("n", 1000)), rng));
  core::ModelParams params;
  // No seeder here: Figure 2 ranks the exchange mechanisms themselves
  // (with a seeder, reciprocity's metrics become finite but meaningless).
  params.seeder_rate = 0.0;

  ranking(caps, params);
  alpha_sweeps(caps);
  proposition3(caps, rng);
  return 0;
}
