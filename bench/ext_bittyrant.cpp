// Extension bench (not a paper artifact): BitTyrant-style strategic
// clients [ref. 6, "Do incentives build robustness in BitTorrent?"].
//
// Strategic clients upload only the minimum that keeps tit-for-tat
// flowing. This bench measures their give-take advantage per mechanism --
// the complement of the free-riding analysis: robustness against
// *strategic* rather than *parasitic* deviation.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace coopnet;
  const util::Cli cli(argc, argv);
  auto base = bench::scenario_from_cli(cli);
  if (!cli.has("scale") && !cli.has("n")) {
    base.n_peers = 300;
    base.file_bytes = 32LL * 1024 * 1024;
    base.graph.degree = 30;
  }
  base.strategic_fraction =
      cli.get_double_in("strategic", 0.2, 0.0, 1.0);

  std::printf("Extension: %.0f%% BitTyrant-style strategic clients, N = "
              "%zu\n\nGive-take ratio u/d: 1.0 = contributes as much as it "
              "consumes; lower =\nthe strategic client gets service it did "
              "not pay for.\n\n",
              base.strategic_fraction * 100.0, base.n_peers);

  util::Table table("Strategic advantage per mechanism");
  table.set_header({"Mechanism", "compliant u/d", "strategic u/d",
                    "advantage (1 - s/c)", "mean compl. (s)"});
  std::vector<sim::SwarmConfig> cells;
  for (core::Algorithm algo : core::kAllAlgorithmsExtended) {
    if (algo == core::Algorithm::kReciprocity) continue;  // nothing moves
    auto config = base;
    config.algorithm = algo;
    cells.push_back(config);
  }
  exp::SweepTiming timing;
  const auto reports =
      exp::run_cells(cells, bench::jobs_from_cli(cli), &timing);
  for (const auto& r : reports) {
    const core::Algorithm algo = r.algorithm;
    const bool defined =
        r.strategic_mean_ratio > 0.0 && r.compliant_mean_ratio > 0.0;
    table.add_row(
        {core::to_string(algo),
         r.compliant_mean_ratio < 0.0
             ? "-"
             : util::Table::num(r.compliant_mean_ratio, 3),
         r.strategic_mean_ratio < 0.0
             ? "-"
             : util::Table::num(r.strategic_mean_ratio, 3),
         defined ? util::Table::pct(
                       1.0 - r.strategic_mean_ratio / r.compliant_mean_ratio)
                 : "-",
         r.completion_times.empty()
             ? "-"
             : util::Table::num(r.completion_summary.mean, 5)});
  }
  std::printf("%s", table.render().c_str());
  bench::print_sweep_timing(timing);
  std::printf(
      "\nExpected shape: a clear strategic advantage under BitTorrent "
      "(tit-for-tat is\ngameable with minimal give-back); little to none "
      "under T-Chain and\nFairTorrent, whose per-piece accounting leaves "
      "nothing to save; altruism\nrewards not uploading at all (the "
      "strategic client is just a lazy peer).\n");
  return 0;
}
