// Machine-readable benchmark records: the BENCH_*.json pipeline.
//
// micro_engine and micro_swarm emit one JSON document each (BENCH_engine
// and BENCH_swarm) with named throughput records; tools/ci_bench_gate.sh
// diffs a fresh run against the committed baseline under bench/baselines/
// and fails CI on a >20% throughput regression (warns at >5%). Record
// names are the join key, so keep them stable; add new records freely.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "util/atomic_file.h"

namespace coopnet::bench {

/// One named throughput measurement. `extra` holds pre-rendered JSON
/// key/value pairs (e.g. machine-independent speedup ratios) appended to
/// the record verbatim.
struct BenchRecord {
  std::string name;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  std::vector<std::pair<std::string, double>> extra;

  double events_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
  }
  double ns_per_event() const {
    return events > 0 ? wall_s * 1e9 / static_cast<double>(events) : 0.0;
  }
};

/// Peak resident set size of this process, in kilobytes.
inline long peak_rss_kb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

/// Monotonic wall-clock seconds for timing benchmark sections.
inline double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Writes the BENCH_*.json document crash-safely (the CI gate diffs these
/// against committed baselines -- a torn artifact must be impossible).
/// Layout:
///   {"tool": ..., "schema": 1, "peak_rss_kb": ...,
///    "results": [{"name": ..., "events": ..., "wall_s": ...,
///                 "events_per_sec": ..., "ns_per_event": ..., ...}, ...]}
inline void write_bench_json(const std::string& path, const std::string& tool,
                             const std::vector<BenchRecord>& records) {
  std::string out;
  char buf[256];
  auto append = [&out, &buf](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };
  append("{\n  \"tool\": \"%s\",\n  \"schema\": 1,\n", tool.c_str());
  append("  \"peak_rss_kb\": %ld,\n  \"results\": [", peak_rss_kb());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    append("%s\n    {\"name\": \"%s\", \"events\": %llu, ",
           i == 0 ? "" : ",", r.name.c_str(),
           static_cast<unsigned long long>(r.events));
    append("\"wall_s\": %.6f, \"events_per_sec\": %.1f, "
           "\"ns_per_event\": %.2f",
           r.wall_s, r.events_per_sec(), r.ns_per_event());
    for (const auto& [key, value] : r.extra) {
      append(", \"%s\": %.6f", key.c_str(), value);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  util::write_file_atomic(path, out);
}

}  // namespace coopnet::bench
