// Fluid-backend throughput benchmark: RK4 steps per wall-clock second
// across the cross-validation scenario family (tests/core/
// fluid_crossval_test.cpp), plus the N = 10^6 extrapolation cell the
// backend exists for.
//
//   micro_fluid [--json-out FILE] [--seed S]
//
// --json-out writes the BENCH_fluid.json document consumed by
// tools/ci_bench_gate.sh; bench/baselines/BENCH_fluid.json is the
// committed baseline. Step counts are deterministic (the integrator is a
// pure function of the config), so the gate diffs them byte-for-byte --
// a changed step count means the stable-dt derivation or the scenario
// mapping moved, never noise.
//
// The N = 10^6 record doubles as the perf tripwire behind the crossval
// suite's < 1 s extrapolation gate: the committed baseline wall clock is
// ~0.1 s, so a regression back into denormal-crawl territory (or an
// accidentally finer step) shows up here long before the test's hard
// limit is at risk.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/fluid_model.h"
#include "exp/backend.h"
#include "sim/config.h"
#include "sim/faults.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace coopnet;

// The cross-validation scenario (8 MB / 128 KB, degree 30, 4000 s
// horizon): what the committed tolerance bands were measured on.
sim::SwarmConfig fluid_config(core::Algorithm algo, bool churn,
                              std::size_t n, std::uint64_t seed) {
  sim::SwarmConfig config;
  config.algorithm = algo;
  config.n_peers = n;
  config.file_bytes = 8LL * 1024 * 1024;
  config.piece_bytes = 128LL * 1024;
  config.graph.degree = 30;
  config.max_time = 4000.0;
  config.seed = seed;
  if (churn) {
    config.faults = sim::moderate_churn();
    config.faults.transfer_loss_rate = 0.05;
  }
  return config;
}

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 415));
  const std::string json_out = cli.get_string("json-out", "");

  struct Cell {
    std::string name;
    sim::SwarmConfig config;
  };
  std::vector<Cell> cells;
  // The six-mechanism sweep at the crossval N = 1000 cell.
  for (core::Algorithm algo : core::kAllAlgorithms) {
    cells.push_back({"fluid/" + core::to_string(algo) + "/n=1000",
                     fluid_config(algo, /*churn=*/false, 1000, seed)});
  }
  // Churn exercises the stage-resolved offline compartments (the state
  // vector doubles, the per-step cost with it).
  cells.push_back({"fluid/BitTorrent/churn/n=1000",
                   fluid_config(core::Algorithm::kBitTorrent, /*churn=*/true,
                                1000, seed)});
  // The extrapolation cell: same wall-clock class as N = 1000 by
  // construction (cost is O(steps * classes), independent of N).
  cells.push_back({"fluid/BitTorrent/n=1000000",
                   fluid_config(core::Algorithm::kBitTorrent, /*churn=*/false,
                                1000000, seed)});

  std::vector<bench::BenchRecord> records;
  util::Table table("micro_fluid: RK4 integration throughput");
  table.set_header({"cell", "steps", "wall (s)", "steps/s", "mean (s)"});
  for (const Cell& cell : cells) {
    const double start = bench::wall_now();
    const core::FluidReport report = exp::run_fluid_scenario(cell.config);
    const double wall = bench::wall_now() - start;

    bench::BenchRecord r;
    r.name = cell.name;
    r.events = report.steps;
    r.wall_s = wall;
    r.extra.emplace_back("completed_fraction", report.completed_fraction);
    table.add_row({cell.name, std::to_string(r.events),
                   util::Table::num(wall, 4),
                   util::Table::num(r.events_per_sec(), 0),
                   util::Table::num(report.mean_completion_time, 2)});
    records.push_back(std::move(r));
  }

  std::printf("%s", table.render().c_str());
  std::printf("peak RSS: %ld kB\n", bench::peak_rss_kb());
  if (!json_out.empty()) {
    bench::write_bench_json(json_out, "micro_fluid", records);
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
