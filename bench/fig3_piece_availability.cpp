// Figure 3 -- efficiency ranking under piece-availability constraints:
// expected piece-exchange probabilities per algorithm (eqs. 4-8, Prop. 2,
// Cor. 2) as functions of the swarm size and the piece-count mix.
//
// Output: expected pi per algorithm for flash-crowd / mid-swarm / steady
// mixes, the pi-vs-N convergence of T-Chain to altruism, and the eq. 8
// alpha_BT threshold (ablation over piece distributions).
#include <cstdio>

#include "bench_common.h"
#include "core/piece_availability.h"

namespace {

using namespace coopnet;
using core::PieceCountDistribution;

struct Mix {
  std::string name;
  PieceCountDistribution dist;
};

std::vector<Mix> mixes(std::int64_t M) {
  return {
      {"flash crowd (60% empty)",
       PieceCountDistribution::flash_crowd(0.6, M / 8, M)},
      {"synchronized early (all m=M/8)",
       PieceCountDistribution::point_mass(M / 8, M)},
      {"synchronized mid (all m=M/2)",
       PieceCountDistribution::point_mass(M / 2, M)},
      {"mid swarm (uniform 1..M-1)",
       PieceCountDistribution::uniform_interior(M)},
      {"endgame (all m=M-2)",
       PieceCountDistribution::point_mass(M - 2, M)},
  };
}

void pi_table(std::int64_t M, std::int64_t N, double alpha_bt) {
  util::Table table("Figure 3: expected piece-exchange probability E[pi] "
                    "(M = " + std::to_string(M) +
                    ", N = " + std::to_string(N) + ")");
  table.set_header({"piece mix", "altruism", "T-Chain",
                    "BitTorrent (a=" + util::Table::num(alpha_bt, 2) + ")",
                    "direct recip."});
  for (const auto& mix : mixes(M)) {
    const auto& d = mix.dist;
    const double pa = core::expected_pi(d, [&](auto mj, auto mi) {
      return core::pi_altruism(mj, mi, M);
    });
    const double tc = core::expected_pi(d, [&](auto mj, auto mi) {
      return core::pi_tchain(mj, mi, d, N);
    });
    const double bt = core::expected_pi(d, [&](auto mj, auto mi) {
      return core::pi_bittorrent(mj, mi, M, alpha_bt);
    });
    const double dr = core::expected_pi(d, [&](auto mj, auto mi) {
      return core::pi_direct_reciprocity(mj, mi, M);
    });
    table.add_row({mix.name, util::Table::num(pa, 4),
                   util::Table::num(tc, 4), util::Table::num(bt, 4),
                   util::Table::num(dr, 4)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("Expected shape (Cor. 2): altruism >= T-Chain >= BitTorrent "
              ">= direct reciprocity,\nwith T-Chain -> altruism as N "
              "grows.\n");
}

void convergence_series(std::int64_t M) {
  const auto dist = PieceCountDistribution::uniform_interior(M);
  util::TimeSeries tc("T-Chain"), pa("Altruism"), bt("BitTorrent");
  for (std::int64_t N : {2, 3, 5, 10, 20, 50, 100, 300, 1000}) {
    const double x = static_cast<double>(N);
    tc.add(x, core::expected_pi(dist, [&](auto mj, auto mi) {
             return core::pi_tchain(mj, mi, dist, N);
           }));
    pa.add(x, core::expected_pi(dist, [&](auto mj, auto mi) {
             return core::pi_altruism(mj, mi, M);
           }));
    bt.add(x, core::expected_pi(dist, [&](auto mj, auto mi) {
             return core::pi_bittorrent(mj, mi, M, 0.2);
           }));
  }
  bench::print_series_chart("E[pi] vs swarm size N (mid-swarm mix): T-Chain "
                            "converges to altruism",
                            {{"T-Chain", tc}, {"Altruism", pa},
                             {"BitTorrent", bt}},
                            "N", "E[pi]");
}

void alpha_threshold_table(std::int64_t M, std::int64_t N) {
  util::Table table("Eq. 8: alpha_BT threshold below which pi_TC >= pi_BT");
  table.set_header({"piece mix", "threshold (m_j = M/4)",
                    "threshold (m_j = M/2)", "threshold (m_j = 3M/4)"});
  for (const auto& mix : mixes(M)) {
    table.add_row({mix.name,
                   util::Table::num(
                       core::alpha_bt_threshold(M / 4, mix.dist, N), 4),
                   util::Table::num(
                       core::alpha_bt_threshold(M / 2, mix.dist, N), 4),
                   util::Table::num(
                       core::alpha_bt_threshold(3 * M / 4, mix.dist, N),
                       4)});
  }
  std::printf("\n%s", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::int64_t M = cli.get_int("pieces", 128);
  const std::int64_t N = cli.get_int("n", 1000);
  const double alpha_bt = cli.get_double_in("alpha-bt", 0.2, 0.0, 1.0);

  pi_table(M, N, alpha_bt);
  convergence_series(M);
  alpha_threshold_table(M, N);
  return 0;
}
