// Degradation sweep: every incentive mechanism under increasing fault and
// churn pressure (robustness companion to Figures 4-6, which assume an
// ideal transport).
//
// For each fault level the full algorithm set runs over the same base
// scenario (same seed => same capacities/topology), and the table reports
// how completion, efficiency, and goodput degrade relative to the
// fault-free run.
//
//   ./fig_churn_sweep [--scale small|mid|paper] [--n N] [--seed S]
//                     [--max-time T] [--jobs J] [--json] [--json-out F]
//                     [--audit] [--audit-every N]
//                     [--cell-timeout S] [--event-budget N]
//                     [--journal F] [--resume F]
//                     [--fleet-listen [HOST:]PORT | --fleet-connect H:P]
//
// The supervised flags (see exp/supervise.h) quarantine failing cells
// instead of aborting the whole matrix, journal completed cells
// crash-safely, and make an interrupted sweep resumable; exit code 3
// flags degraded coverage.
//
// The fleet flags (see fleet/options.h) distribute the same cell matrix
// across machines: one process runs --fleet-listen (the coordinator;
// requires --journal) and any number run --fleet-connect with the SAME
// sweep flags. Artifacts are byte-identical to a local --jobs N run,
// and a SIGKILLed worker only costs wall-clock time.
//
// --audit runs the whole fault x mechanism matrix under the swarm
// invariant auditor (requires a -DCOOPNET_AUDIT=ON build; any violation
// aborts the sweep with the offending cell's diagnostic). This is the CI
// audit smoke.
#include "bench_common.h"
#include "sim/auditor.h"
#include "sim/faults.h"

namespace {

struct FaultLevel {
  std::string name;
  coopnet::sim::FaultConfig faults;
};

std::vector<FaultLevel> fault_levels() {
  using namespace coopnet::sim;
  std::vector<FaultLevel> levels;
  levels.push_back({"none", FaultConfig{}});
  levels.push_back({"loss 5%", lossy_faults(0.05)});
  levels.push_back({"loss 20%", lossy_faults(0.20)});
  {
    FaultLevel l{"stalls 10%", FaultConfig{}};
    l.faults.transfer_stall_rate = 0.10;
    l.faults.stall_timeout = 30.0;
    levels.push_back(l);
  }
  levels.push_back({"moderate churn", moderate_churn()});
  levels.push_back({"heavy churn", heavy_churn()});
  {
    // Everything at once: the "hostile weekend" scenario.
    FaultLevel l{"loss 10% + heavy churn + seeder blinks", heavy_churn()};
    l.faults.transfer_loss_rate = 0.10;
    l.faults.seeder_uptime = 120.0;
    l.faults.seeder_downtime = 30.0;
    levels.push_back(l);
  }
  return levels;
}

int run_supervised_sweep(const coopnet::util::Cli& cli,
                         const std::vector<FaultLevel>& levels,
                         const std::vector<coopnet::sim::SwarmConfig>& cells,
                         std::size_t jobs, std::uint64_t base_seed,
                         const coopnet::exp::SweepControl& control,
                         const coopnet::fleet::FleetControl& fleet) {
  using namespace coopnet;
  exp::SweepJournal sj =
      bench::open_journal_from_cli(control, cells.size(), base_seed);
  // A fleet coordinator distributes the same cells to TCP workers and
  // merges their journal records; artifacts are byte-identical either way.
  const exp::SweepResult sweep =
      fleet.coordinator()
          ? bench::serve_fleet_coordinator(cells, base_seed, fleet, sj)
          : exp::run_cells_supervised(cells, jobs, control.supervision,
                                      sj.journal.get(), sj.resume.get(),
                                      control.checkpoint);

  util::Table table(
      "Degradation under faults & churn (per fault level x mechanism)");
  table.set_header({"Fault level", "Algorithm", "status", "finished",
                    "mean compl. (s)", "vs clean", "retries", "abandoned",
                    "departed(rejoined)", "goodput"});
  std::vector<double> clean_mean(core::kAllAlgorithms.size(), -1.0);
  for (std::size_t li = 0; li < levels.size(); ++li) {
    const auto& level = levels[li];
    for (std::size_t ai = 0; ai < core::kAllAlgorithms.size(); ++ai) {
      const core::Algorithm algo = core::kAllAlgorithms[ai];
      const exp::CellOutcome& o =
          sweep.outcomes[li * core::kAllAlgorithms.size() + ai];
      const std::string status =
          o.from_journal ? "ok (journal)" : to_string(o.status);
      if (!o.has_report) {
        table.add_row({level.name, core::to_string(algo), status, "-", "-",
                       "-", "-", "-", "-", "-"});
        continue;
      }
      const metrics::RunReport& r = o.report;
      const bool finished_any = !r.completion_times.empty();
      const double mean = finished_any ? r.completion_summary.mean : -1.0;
      if (level.name == "none") clean_mean[ai] = mean;
      std::string vs_clean = "-";
      if (mean > 0.0 && clean_mean[ai] > 0.0) {
        vs_clean = util::Table::num(mean / clean_mean[ai], 3) + "x";
      }
      // Journal stubs restore the headline metrics but not the fault
      // counters or goodput, so resumed rows show "-" there.
      const auto& f = r.faults;
      table.add_row(
          {level.name, core::to_string(algo), status,
           std::to_string(r.completion_times.size()) + "/" +
               std::to_string(r.compliant_population),
           finished_any ? util::Table::num(mean, 5) : "never", vs_clean,
           o.from_journal ? "-" : std::to_string(f.retries_scheduled),
           o.from_journal ? "-" : std::to_string(f.transfers_abandoned),
           o.from_journal ? "-"
                          : std::to_string(f.churn_departures) + "(" +
                                std::to_string(f.churn_rejoins) + ")",
           o.from_journal ? "-" : util::Table::pct(r.goodput_ratio)});
    }
  }
  std::printf("%s", table.render().c_str());
  bench::print_sweep_timing(sweep.timing);
  bench::print_degraded_coverage(sweep);

  util::Table summary("Completion rate by fault level (fraction of "
                      "compliant peers that finish)");
  std::vector<std::string> header{"Algorithm"};
  for (const auto& level : levels) header.push_back(level.name);
  summary.set_header(header);
  for (std::size_t ai = 0; ai < core::kAllAlgorithms.size(); ++ai) {
    std::vector<std::string> row{core::to_string(core::kAllAlgorithms[ai])};
    for (std::size_t li = 0; li < levels.size(); ++li) {
      const auto& o = sweep.outcomes[li * core::kAllAlgorithms.size() + ai];
      row.push_back(o.has_report
                        ? util::Table::pct(o.report.completed_fraction)
                        : "-");
    }
    summary.add_row(row);
  }
  std::printf("\n%s", summary.render().c_str());

  if (cli.has("audit")) {
    std::printf("\naudit: %zu swarms ran under the invariant auditor "
                "(quarantined cells excluded)\n",
                sweep.count(exp::CellOutcome::Status::kOk));
  }

  bench::maybe_dump_supervised_json(cli, sweep);
  return sweep.complete() ? 0 : 3;
}

int run_sweep(const coopnet::util::Cli& cli) {
  using namespace coopnet;
  // Small scale by default: the sweep runs |levels| x |algorithms| swarms.
  sim::SwarmConfig base = bench::scenario_from_cli(cli, "small");

  if (cli.has("audit") && !sim::kAuditCompiledIn) {
    std::fprintf(stderr,
                 "fig_churn_sweep: --audit needs a build configured with "
                 "-DCOOPNET_AUDIT=ON\n");
    return 2;
  }
  base.audit_every =
      static_cast<std::uint64_t>(cli.get_int("audit-every", 1));

  const auto levels = fault_levels();
  const std::size_t jobs = bench::jobs_from_cli(cli);
  const exp::SweepControl control = exp::sweep_control_from_cli(cli);

  // The whole sweep is one batch of independent (fault level, algorithm)
  // cells; slot order reproduces the sequential row order exactly.
  std::vector<sim::SwarmConfig> cells;
  for (const auto& level : levels) {
    for (core::Algorithm algo : core::kAllAlgorithms) {
      sim::SwarmConfig config = base;
      config.algorithm = algo;
      config.faults = level.faults;
      cells.push_back(config);
    }
  }
  const fleet::FleetControl fleet = fleet::fleet_control_from_cli(cli);
  if (fleet.worker()) {
    // Workers run cells for the coordinator and render nothing locally.
    return bench::run_fleet_worker(cells, base.seed, fleet,
                                   control.supervision,
                                   control.checkpoint.every);
  }
  std::fprintf(stderr,
               "  running %zu fault levels x %zu algorithms = %zu swarms "
               "(jobs=%zu)...\n",
               levels.size(), core::kAllAlgorithms.size(), cells.size(),
               jobs);
  if (control.active() || fleet.active()) {
    return run_supervised_sweep(cli, levels, cells, jobs, base.seed, control,
                                fleet);
  }
  exp::SweepTiming timing;
  const std::vector<metrics::RunReport> all_reports =
      exp::run_cells(cells, jobs, &timing);

  util::Table table(
      "Degradation under faults & churn (per fault level x mechanism)");
  table.set_header({"Fault level", "Algorithm", "finished", "mean compl. (s)",
                    "vs clean", "retries", "abandoned", "departed(rejoined)",
                    "goodput"});

  // Per-algorithm fault-free mean completion, for the "vs clean" column.
  std::vector<double> clean_mean(core::kAllAlgorithms.size(), -1.0);

  for (std::size_t li = 0; li < levels.size(); ++li) {
    const auto& level = levels[li];
    for (std::size_t ai = 0; ai < core::kAllAlgorithms.size(); ++ai) {
      const core::Algorithm algo = core::kAllAlgorithms[ai];
      const metrics::RunReport& r =
          all_reports[li * core::kAllAlgorithms.size() + ai];

      const bool finished_any = !r.completion_times.empty();
      const double mean =
          finished_any ? r.completion_summary.mean : -1.0;
      if (level.name == "none") clean_mean[ai] = mean;
      std::string vs_clean = "-";
      if (mean > 0.0 && clean_mean[ai] > 0.0) {
        vs_clean = util::Table::num(mean / clean_mean[ai], 3) + "x";
      }
      const auto& f = r.faults;
      table.add_row(
          {level.name, core::to_string(algo),
           std::to_string(r.completion_times.size()) + "/" +
               std::to_string(r.compliant_population),
           finished_any ? util::Table::num(mean, 5) : "never",
           vs_clean, std::to_string(f.retries_scheduled),
           std::to_string(f.transfers_abandoned),
           std::to_string(f.churn_departures) + "(" +
               std::to_string(f.churn_rejoins) + ")",
           util::Table::pct(r.goodput_ratio)});
    }
  }
  std::printf("%s", table.render().c_str());
  bench::print_sweep_timing(timing);

  // Completion-rate-under-churn summary: the headline robustness number.
  util::Table summary("Completion rate by fault level (fraction of "
                      "compliant peers that finish)");
  std::vector<std::string> header{"Algorithm"};
  for (const auto& level : levels) header.push_back(level.name);
  summary.set_header(header);
  for (std::size_t ai = 0; ai < core::kAllAlgorithms.size(); ++ai) {
    std::vector<std::string> row{
        core::to_string(core::kAllAlgorithms[ai])};
    for (std::size_t li = 0; li < levels.size(); ++li) {
      const auto& r =
          all_reports[li * core::kAllAlgorithms.size() + ai];
      row.push_back(util::Table::pct(r.completed_fraction));
    }
    summary.add_row(row);
  }
  std::printf("\n%s", summary.render().c_str());

  if (cli.has("audit")) {
    std::printf("\naudit: %zu swarms ran under the invariant auditor with "
                "zero violations\n",
                cells.size());
  }

  bench::maybe_dump_csv(cli, all_reports);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const coopnet::util::Cli cli(argc, argv);
  try {
    return run_sweep(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig_churn_sweep: %s\n", e.what());
    return 1;
  }
}
