// Table III -- resources available for free-riding: exploitable upload
// bandwidth and collusion probability per algorithm, with ablation sweeps
// over alpha_BT, alpha_R, omega, and the collusion-ring size, plus a
// simulation cross-check of the exploitable-resources ordering.
#include <cstdio>

#include "bench_common.h"
#include "core/capacity.h"
#include "core/freeriding.h"
#include "core/piece_availability.h"

namespace {

using namespace coopnet;
using core::Algorithm;

void main_table(const std::vector<double>& caps) {
  core::ModelParams params;
  const double omega = 0.75;
  core::CollusionParams collusion;
  collusion.n_users = static_cast<std::int64_t>(caps.size());
  collusion.n_colluders = collusion.n_users / 5;  // the paper's 20%
  const auto dist = core::PieceCountDistribution::uniform_interior(128);
  collusion.pi_ir = core::expected_pi(dist, [&](auto mj, auto mi) {
    return core::pi_indirect_reciprocity(mj, mi, dist, collusion.n_users);
  });

  const double total = core::total_capacity(caps);
  util::Table table("Table III: resources available for free-riding "
                    "(total capacity = " +
                    util::Table::num(total / (1024 * 1024), 4) + " MiB/s)");
  table.set_header({"Algorithm", "exploitable (MiB/s)", "share of total",
                    "collusion exposure", "collusion probability"});
  for (const auto& row :
       core::freeriding_table(caps, params, omega, collusion)) {
    table.add_row(
        {core::to_string(row.algorithm),
         util::Table::num(row.exploitable_resources / (1024 * 1024), 4),
         util::Table::pct(row.exploitable_resources / total),
         core::to_string(row.exposure),
         row.collusion_probability < 0.0
             ? "n/a"
             : util::Table::num(row.collusion_probability, 4)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("FairTorrent deficit bound (O(log N), [7]): %.2f pieces for "
              "N = %zu\n",
              core::fairtorrent_deficit_bound(
                  static_cast<std::int64_t>(caps.size())),
              caps.size());
}

void sweeps(const std::vector<double>& caps) {
  const double total = core::total_capacity(caps);
  util::Table sweep("Ablation: altruism-share knobs vs exploitable share "
                    "of total capacity");
  sweep.set_header({"knob value", "BitTorrent (alpha_BT)",
                    "Reputation (alpha_R)", "FairTorrent (1 - omega)"});
  for (double v : {0.0, 0.1, 0.2, 0.4, 0.8}) {
    core::ModelParams bt_params;
    bt_params.alpha_bt = v;
    core::ModelParams rep_params;
    rep_params.alpha_r = v;
    sweep.add_row(
        {util::Table::num(v, 2),
         util::Table::pct(core::exploitable_resources(
                              Algorithm::kBitTorrent, caps, bt_params, 0.75) /
                          total),
         util::Table::pct(core::exploitable_resources(
                              Algorithm::kReputation, caps, rep_params,
                              0.75) /
                          total),
         util::Table::pct(core::exploitable_resources(
                              Algorithm::kFairTorrent, caps, {}, 1.0 - v) /
                          total)});
  }
  std::printf("\n%s", sweep.render().c_str());

  util::Table ring("Ablation: collusion-ring size m vs T-Chain collusion "
                   "probability (N = 1000, pi_IR = 0.1)");
  ring.set_header({"m", "probability"});
  for (std::int64_t m : {0, 10, 50, 200, 500, 1000}) {
    core::CollusionParams c;
    c.n_users = 1000;
    c.n_colluders = m;
    c.pi_ir = 0.1;
    ring.add_row({std::to_string(m),
                  util::Table::num(core::tchain_collusion_probability(c), 5)});
  }
  std::printf("\n%s", ring.render().c_str());
}

void simulation_cross_check(const util::Cli& cli) {
  std::printf("\nSimulation cross-check: realized susceptibility with 20%% "
              "free-riders\n(plain free-riding only -- no targeted "
              "attacks; mid scale).\n");
  util::Table table("");
  table.set_header({"Algorithm", "Table III exploitable share",
                    "realized susceptibility"});
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 7)));
  const auto caps = core::sorted_descending(
      core::CapacityDistribution::default_mix().sample(300, rng));
  const double total = core::total_capacity(caps);

  std::vector<sim::SwarmConfig> cells;
  for (Algorithm a : core::kAllAlgorithms) {
    auto config = sim::SwarmConfig::paper_scale(a, 7);
    config.n_peers = 300;
    config.file_bytes = 32LL * 1024 * 1024;
    config.graph.degree = 30;
    config.max_time = 1500.0;
    config.free_rider_fraction = 0.2;  // plain free-riding, no extra attack
    cells.push_back(config);
  }
  exp::SweepTiming timing;
  const auto reports =
      exp::run_cells(cells, bench::jobs_from_cli(cli), &timing);
  for (std::size_t i = 0; i < core::kAllAlgorithms.size(); ++i) {
    const Algorithm a = core::kAllAlgorithms[i];
    table.add_row(
        {core::to_string(a),
         util::Table::pct(
             core::exploitable_resources(a, caps, {}, 0.75) / total),
         util::Table::pct(reports[i].susceptibility)});
  }
  std::printf("%s", table.render().c_str());
  bench::print_sweep_timing(timing);
  std::printf("Expected shape: both columns rank reciprocity = T-Chain ~ 0 "
              "< reputation/BitTorrent/FairTorrent < altruism.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 7)));
  const auto caps = core::sorted_descending(
      core::CapacityDistribution::default_mix().sample(
          static_cast<std::size_t>(cli.get_int("n", 1000)), rng));

  main_table(caps);
  sweeps(caps);
  if (!cli.has("no-sim")) simulation_cross_check(cli);
  return 0;
}
