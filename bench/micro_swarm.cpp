// End-to-end swarm throughput benchmark: the six-mechanism sweep at
// N in {100, 1000, 5000}, measured in simulator events per wall-clock
// second. This is the macro counterpart of micro_engine: it exercises the
// full hot path (event engine, neighbor interest checks, rarest-first
// selection, transfer machinery) exactly the way the paper's Section V
// experiments do.
//
//   micro_swarm [--json-out FILE] [--max-n N] [--seed S]
//
// --json-out writes the BENCH_swarm.json document consumed by
// tools/ci_bench_gate.sh; bench/baselines/BENCH_swarm.json is the
// committed baseline and bench/baselines/BENCH_swarm.seed.json preserves
// the pre-optimization numbers the PR's speedup claim is measured against
// (same source file, same workloads). --max-n 1000 skips the N = 5000 leg
// (the CI perf-smoke setting).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "metrics/run_metrics.h"
#include "sim/swarm.h"
#include "strategy/factory.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace coopnet;

sim::SwarmConfig sweep_config(core::Algorithm algo, std::size_t n,
                              std::uint64_t seed) {
  auto config = sim::SwarmConfig::paper_scale(algo, seed);
  config.n_peers = n;
  if (n <= 100) {
    config.file_bytes = 16LL * 1024 * 1024;
  } else if (n >= 5000) {
    // Smaller file at N = 5000 bounds the sweep's wall clock; the point of
    // the leg is scheduler + index scaling with swarm size, not file size.
    config.file_bytes = 32LL * 1024 * 1024;
  }
  // Cap idle tails (pure reciprocity never completes); matches the bench
  // default in bench_common.h.
  config.max_time = 4000.0;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const auto max_n = static_cast<std::size_t>(cli.get_int("max-n", 5000));
  const std::string json_out = cli.get_string("json-out", "");

  std::vector<bench::BenchRecord> records;
  util::Table table("micro_swarm: six-mechanism sweep throughput");
  table.set_header({"N", "mechanism", "events", "wall (s)", "events/s",
                    "ns/event"});

  for (std::size_t n : {std::size_t{100}, std::size_t{1000},
                        std::size_t{5000}}) {
    if (n > max_n) continue;
    bench::BenchRecord sweep;
    sweep.name = "sweep/n=" + std::to_string(n);
    for (core::Algorithm algo : core::kAllAlgorithms) {
      const auto config = sweep_config(algo, n, seed);
      sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
      metrics::RunMetrics collector;
      collector.install(swarm);
      const double start = bench::wall_now();
      swarm.run();
      const double wall = bench::wall_now() - start;

      bench::BenchRecord r;
      r.name = core::to_string(algo) + "/n=" + std::to_string(n);
      r.events = swarm.engine().events_processed();
      r.wall_s = wall;
      sweep.events += r.events;
      sweep.wall_s += r.wall_s;
      table.add_row({std::to_string(n), core::to_string(algo),
                     std::to_string(r.events), util::Table::num(r.wall_s, 3),
                     util::Table::num(r.events_per_sec(), 0),
                     util::Table::num(r.ns_per_event(), 1)});
      records.push_back(std::move(r));
    }
    table.add_row({std::to_string(n), "ALL (sweep)",
                   std::to_string(sweep.events),
                   util::Table::num(sweep.wall_s, 3),
                   util::Table::num(sweep.events_per_sec(), 0),
                   util::Table::num(sweep.ns_per_event(), 1)});
    records.push_back(std::move(sweep));
  }

  std::printf("%s", table.render().c_str());
  std::printf("peak RSS: %ld kB\n", bench::peak_rss_kb());
  if (!json_out.empty()) {
    bench::write_bench_json(json_out, "micro_swarm", records);
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}
