// End-to-end swarm throughput benchmark: the six-mechanism sweep at
// N in {100, 1000, 5000}, measured in simulator events per wall-clock
// second. This is the macro counterpart of micro_engine: it exercises the
// full hot path (event engine, neighbor interest checks, rarest-first
// selection, transfer machinery) exactly the way the paper's Section V
// experiments do.
//
//   micro_swarm [--json-out FILE] [--max-n N] [--seed S]
//   micro_swarm --peers N [--horizon SECS] [--threads K] [--json-out FILE]
//              [--seed S]
//
// --json-out writes the BENCH_swarm.json document consumed by
// tools/ci_bench_gate.sh; bench/baselines/BENCH_swarm.json is the
// committed baseline and bench/baselines/BENCH_swarm.seed.json preserves
// the pre-optimization numbers the PR's speedup claim is measured against
// (same source file, same workloads). --max-n 1000 skips the N = 5000 leg
// (the CI perf-smoke setting).
//
// --peers switches to the single-run scale leg: one BitTorrent swarm of N
// peers over a small file (8 MB / 32 pieces) and a fixed simulated
// horizon, sized so N = 100,000 fits a CI wall-clock budget. Emits
// BENCH_swarm_scale.json-style records (one `scale/n=N` row, suffixed
// `/threads=K` when --threads K > 1 enables the engine's batched prepare
// phase); the document-level peak_rss_kb is the memory gate's input.
// Event counts stay deterministic -- including across thread counts, by
// the DESIGN §11 byte-identity contract -- so the gate diffs them
// byte-for-byte.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "metrics/run_metrics.h"
#include "sim/swarm.h"
#include "strategy/factory.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace coopnet;

sim::SwarmConfig sweep_config(core::Algorithm algo, std::size_t n,
                              std::uint64_t seed) {
  auto config = sim::SwarmConfig::paper_scale(algo, seed);
  config.n_peers = n;
  if (n <= 100) {
    config.file_bytes = 16LL * 1024 * 1024;
  } else if (n >= 5000) {
    // Smaller file at N = 5000 bounds the sweep's wall clock; the point of
    // the leg is scheduler + index scaling with swarm size, not file size.
    config.file_bytes = 32LL * 1024 * 1024;
  }
  // Cap idle tails (pure reciprocity never completes); matches the bench
  // default in bench_common.h.
  config.max_time = 4000.0;
  return config;
}

// The scale leg: piece work per peer is capped (32 pieces) so event count
// grows ~linearly with N and the run measures per-peer bookkeeping --
// membership, choking, timers -- not file size.
sim::SwarmConfig scale_config(std::size_t n, double horizon,
                              std::uint64_t seed) {
  auto config = sim::SwarmConfig::paper_scale(core::Algorithm::kBitTorrent,
                                              seed);
  config.n_peers = n;
  config.file_bytes = 8LL * 1024 * 1024;  // 32 pieces of 256 KB
  config.graph.degree = 30;
  // A short flash crowd keeps the whole population live at once -- the
  // worst case for the active-set and timer machinery.
  config.flash_crowd_window = 10.0;
  config.max_time = horizon;
  return config;
}

int run_scale_leg(const util::Cli& cli, std::uint64_t seed,
                  const std::string& json_out) {
  const std::size_t n = cli.get_count("peers", 100000, sim::kMaxPeerCount);
  const double horizon = cli.get_double_in("horizon", 120.0, 1e-6, 1e9);
  const std::size_t threads = cli.get_count("threads", 1, 256);

  auto config = scale_config(n, horizon, seed);
  config.threads = threads;
  const double t_build = bench::wall_now();
  sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
  const double build_wall = bench::wall_now() - t_build;
  const double start = bench::wall_now();
  swarm.run();
  const double wall = bench::wall_now() - start;

  bench::BenchRecord r;
  // threads = 1 keeps the record name the committed baseline gates on;
  // threads > 1 rows carry the count so the gate's byte-equal events
  // check pins parallel determinism at scale without forking a baseline
  // per machine shape.
  r.name = "scale/n=" + std::to_string(n);
  if (threads > 1) r.name += "/threads=" + std::to_string(threads);
  r.events = swarm.engine().events_processed();
  r.wall_s = wall;
  r.extra.emplace_back("build_wall_s", build_wall);

  util::Table table("micro_swarm: scale leg (BitTorrent, 8 MB file)");
  table.set_header({"N", "threads", "horizon (s)", "events", "build (s)",
                    "run (s)", "events/s"});
  table.add_row({std::to_string(n), std::to_string(threads),
                 util::Table::num(horizon, 0), std::to_string(r.events),
                 util::Table::num(build_wall, 3), util::Table::num(wall, 3),
                 util::Table::num(r.events_per_sec(), 0)});
  std::printf("%s", table.render().c_str());
  std::printf("peak RSS: %ld kB\n", bench::peak_rss_kb());
  if (!json_out.empty()) {
    bench::write_bench_json(json_out, "micro_swarm_scale", {r});
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const std::string json_out = cli.get_string("json-out", "");
  if (cli.has("peers")) return run_scale_leg(cli, seed, json_out);
  const auto max_n = cli.get_count("max-n", 5000, sim::kMaxPeerCount);

  std::vector<bench::BenchRecord> records;
  util::Table table("micro_swarm: six-mechanism sweep throughput");
  table.set_header({"N", "mechanism", "events", "wall (s)", "events/s",
                    "ns/event"});

  for (std::size_t n : {std::size_t{100}, std::size_t{1000},
                        std::size_t{5000}}) {
    if (n > max_n) continue;
    bench::BenchRecord sweep;
    sweep.name = "sweep/n=" + std::to_string(n);
    for (core::Algorithm algo : core::kAllAlgorithms) {
      const auto config = sweep_config(algo, n, seed);
      sim::Swarm swarm(config, strategy::make_strategy(config.algorithm));
      metrics::RunMetrics collector;
      collector.install(swarm);
      const double start = bench::wall_now();
      swarm.run();
      const double wall = bench::wall_now() - start;

      bench::BenchRecord r;
      r.name = core::to_string(algo) + "/n=" + std::to_string(n);
      r.events = swarm.engine().events_processed();
      r.wall_s = wall;
      sweep.events += r.events;
      sweep.wall_s += r.wall_s;
      table.add_row({std::to_string(n), core::to_string(algo),
                     std::to_string(r.events), util::Table::num(r.wall_s, 3),
                     util::Table::num(r.events_per_sec(), 0),
                     util::Table::num(r.ns_per_event(), 1)});
      records.push_back(std::move(r));
    }
    table.add_row({std::to_string(n), "ALL (sweep)",
                   std::to_string(sweep.events),
                   util::Table::num(sweep.wall_s, 3),
                   util::Table::num(sweep.events_per_sec(), 0),
                   util::Table::num(sweep.ns_per_event(), 1)});
    records.push_back(std::move(sweep));
  }

  std::printf("%s", table.render().c_str());
  std::printf("peak RSS: %ld kB\n", bench::peak_rss_kb());
  if (!json_out.empty()) {
    bench::write_bench_json(json_out, "micro_swarm", records);
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
