// Table I -- expected download rates in equilibrium with perfect piece
// availability, plus a simulation validation pass on a homogeneous swarm.
//
// Output: the analytic download utilization (d_i - u_S/N) per algorithm for
// representative users of a heterogeneous population, an n_BT sweep
// (ablation for the tit-for-tat group size), and a realized-vs-predicted
// throughput check against the event-driven simulator.
#include <cstdio>

#include "bench_common.h"
#include "core/capacity.h"
#include "core/equilibrium.h"

namespace {

using namespace coopnet;
using core::Algorithm;

void analytic_table(const std::vector<double>& caps,
                    const core::ModelParams& params) {
  const std::size_t n = caps.size();
  const std::vector<std::size_t> sample_users = {0, n / 4, n / 2, n - 1};

  util::Table table(
      "Table I: download utilization d_i - u_S/N (bytes/s), N = " +
      std::to_string(n));
  table.set_header({"Algorithm", "U_1 (fastest)", "U_N/4", "U_N/2",
                    "U_N (slowest)", "sum d_i / sum U_i"});
  for (Algorithm a : core::kAllAlgorithms) {
    const auto rates = core::equilibrium_rates(a, caps, params);
    std::vector<std::string> row = {core::to_string(a)};
    for (std::size_t u : sample_users) {
      row.push_back(util::Table::num(
          rates.download[u] - params.seeder_rate / static_cast<double>(n),
          5));
    }
    double total_d = 0.0, total_u = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total_d += rates.download[i];
      total_u += caps[i];
    }
    row.push_back(util::Table::num(total_d / total_u, 3));
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
}

void nbt_ablation(const std::vector<double>& caps) {
  util::Table table("Ablation: BitTorrent n_BT group size vs fastest user's "
                    "download utilization");
  table.set_header({"n_BT", "d_1 (fastest user)", "d_N (slowest user)"});
  for (int n_bt : {1, 2, 4, 8, 16}) {
    core::ModelParams params;
    params.n_bt = n_bt;
    const auto rates =
        core::equilibrium_rates(Algorithm::kBitTorrent, caps, params);
    table.add_row({std::to_string(n_bt),
                   util::Table::num(rates.download.front(), 5),
                   util::Table::num(rates.download.back(), 5)});
  }
  std::printf("\n%s", table.render().c_str());
}

void simulation_validation(const util::Cli& cli) {
  // Homogeneous capacities isolate the Table I prediction d_i = U_i (+
  // seeder share) for the fair algorithms and d_i = mean U for altruism.
  const double capacity = 256.0 * 1024;
  util::Table table(
      "Validation: realized per-user throughput vs Table I prediction "
      "(homogeneous 256 KiB/s swarm)");
  table.set_header({"Algorithm", "predicted d_i (B/s)",
                    "realized file/median-time (B/s)", "ratio"});

  const std::vector<Algorithm> algos = {
      Algorithm::kTChain, Algorithm::kBitTorrent, Algorithm::kFairTorrent,
      Algorithm::kReputation, Algorithm::kAltruism};
  std::vector<sim::SwarmConfig> cells;
  for (Algorithm a : algos) {
    sim::SwarmConfig config;
    config.algorithm = a;
    config.n_peers = static_cast<std::size_t>(cli.get_int("n", 120));
    config.file_bytes = 64 * 128 * 1024;
    config.piece_bytes = 128 * 1024;
    config.capacities = core::CapacityDistribution::homogeneous(capacity);
    config.seeder_capacity = capacity;
    config.graph.degree = 40;
    config.flash_crowd_window = 2.0;
    config.tchain_grace = 8.0;
    config.max_time = 4000.0;
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
    cells.push_back(config);
  }
  exp::SweepTiming timing;
  const auto reports =
      exp::run_cells(cells, bench::jobs_from_cli(cli), &timing);

  for (std::size_t i = 0; i < algos.size(); ++i) {
    const Algorithm a = algos[i];
    const auto& report = reports[i];
    const std::vector<double> caps(cells[i].n_peers, capacity);
    core::ModelParams params;
    params.seeder_rate = cells[i].seeder_capacity;
    const double predicted =
        core::equilibrium_rates(a, caps, params).download.front();
    const double realized =
        report.completion_times.empty()
            ? 0.0
            : static_cast<double>(cells[i].file_bytes) /
                  report.completion_summary.median;
    table.add_row({core::to_string(a), util::Table::num(predicted, 6),
                   util::Table::num(realized, 6),
                   util::Table::num(realized / predicted, 3)});
  }
  std::printf("\n%s", table.render().c_str());
  bench::print_sweep_timing(timing);
  std::printf(
      "\nExpected shape: ratios of order 1; reciprocity omitted (Table I "
      "row is 0 -- no exchange ever starts).\n");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 7)));
  const auto caps = core::sorted_descending(
      core::CapacityDistribution::default_mix().sample(
          static_cast<std::size_t>(cli.get_int("n", 1000)), rng));

  core::ModelParams params;
  params.seeder_rate = 4.0 * 1024 * 1024;

  analytic_table(caps, params);
  nbt_ablation(caps);
  if (!cli.has("no-sim")) simulation_validation(cli);
  return 0;
}
