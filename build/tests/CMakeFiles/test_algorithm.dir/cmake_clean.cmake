file(REMOVE_RECURSE
  "CMakeFiles/test_algorithm.dir/core/algorithm_test.cpp.o"
  "CMakeFiles/test_algorithm.dir/core/algorithm_test.cpp.o.d"
  "test_algorithm"
  "test_algorithm.pdb"
  "test_algorithm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
