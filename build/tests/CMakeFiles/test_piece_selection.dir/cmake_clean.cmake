file(REMOVE_RECURSE
  "CMakeFiles/test_piece_selection.dir/sim/piece_selection_test.cpp.o"
  "CMakeFiles/test_piece_selection.dir/sim/piece_selection_test.cpp.o.d"
  "test_piece_selection"
  "test_piece_selection.pdb"
  "test_piece_selection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_piece_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
