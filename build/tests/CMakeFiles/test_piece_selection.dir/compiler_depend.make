# Empty compiler generated dependencies file for test_piece_selection.
# This may be replaced when dependencies are built.
