file(REMOVE_RECURSE
  "CMakeFiles/test_eigentrust.dir/core/eigentrust_test.cpp.o"
  "CMakeFiles/test_eigentrust.dir/core/eigentrust_test.cpp.o.d"
  "test_eigentrust"
  "test_eigentrust.pdb"
  "test_eigentrust[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eigentrust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
