# Empty dependencies file for test_eigentrust.
# This may be replaced when dependencies are built.
