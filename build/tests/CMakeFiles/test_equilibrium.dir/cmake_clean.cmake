file(REMOVE_RECURSE
  "CMakeFiles/test_equilibrium.dir/core/equilibrium_test.cpp.o"
  "CMakeFiles/test_equilibrium.dir/core/equilibrium_test.cpp.o.d"
  "test_equilibrium"
  "test_equilibrium.pdb"
  "test_equilibrium[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equilibrium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
