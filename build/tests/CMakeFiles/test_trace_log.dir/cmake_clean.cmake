file(REMOVE_RECURSE
  "CMakeFiles/test_trace_log.dir/metrics/trace_log_test.cpp.o"
  "CMakeFiles/test_trace_log.dir/metrics/trace_log_test.cpp.o.d"
  "test_trace_log"
  "test_trace_log.pdb"
  "test_trace_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
