file(REMOVE_RECURSE
  "CMakeFiles/test_paper_orderings.dir/integration/paper_orderings_test.cpp.o"
  "CMakeFiles/test_paper_orderings.dir/integration/paper_orderings_test.cpp.o.d"
  "test_paper_orderings"
  "test_paper_orderings.pdb"
  "test_paper_orderings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_orderings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
