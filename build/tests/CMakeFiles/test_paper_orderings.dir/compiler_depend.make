# Empty compiler generated dependencies file for test_paper_orderings.
# This may be replaced when dependencies are built.
