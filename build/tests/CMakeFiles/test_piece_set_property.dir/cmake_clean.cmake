file(REMOVE_RECURSE
  "CMakeFiles/test_piece_set_property.dir/sim/piece_set_property_test.cpp.o"
  "CMakeFiles/test_piece_set_property.dir/sim/piece_set_property_test.cpp.o.d"
  "test_piece_set_property"
  "test_piece_set_property.pdb"
  "test_piece_set_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_piece_set_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
