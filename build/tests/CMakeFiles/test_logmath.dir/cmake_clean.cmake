file(REMOVE_RECURSE
  "CMakeFiles/test_logmath.dir/util/logmath_test.cpp.o"
  "CMakeFiles/test_logmath.dir/util/logmath_test.cpp.o.d"
  "test_logmath"
  "test_logmath.pdb"
  "test_logmath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logmath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
