# Empty dependencies file for test_tchain_strategy.
# This may be replaced when dependencies are built.
