file(REMOVE_RECURSE
  "CMakeFiles/test_tchain_strategy.dir/strategy/tchain_test.cpp.o"
  "CMakeFiles/test_tchain_strategy.dir/strategy/tchain_test.cpp.o.d"
  "test_tchain_strategy"
  "test_tchain_strategy.pdb"
  "test_tchain_strategy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tchain_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
