file(REMOVE_RECURSE
  "CMakeFiles/test_neighbor_graph.dir/sim/neighbor_graph_test.cpp.o"
  "CMakeFiles/test_neighbor_graph.dir/sim/neighbor_graph_test.cpp.o.d"
  "test_neighbor_graph"
  "test_neighbor_graph.pdb"
  "test_neighbor_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neighbor_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
