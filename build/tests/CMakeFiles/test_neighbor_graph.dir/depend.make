# Empty dependencies file for test_neighbor_graph.
# This may be replaced when dependencies are built.
