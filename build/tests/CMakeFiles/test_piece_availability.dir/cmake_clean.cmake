file(REMOVE_RECURSE
  "CMakeFiles/test_piece_availability.dir/core/piece_availability_test.cpp.o"
  "CMakeFiles/test_piece_availability.dir/core/piece_availability_test.cpp.o.d"
  "test_piece_availability"
  "test_piece_availability.pdb"
  "test_piece_availability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_piece_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
