# Empty dependencies file for test_piece_availability.
# This may be replaced when dependencies are built.
