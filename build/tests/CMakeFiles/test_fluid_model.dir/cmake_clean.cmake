file(REMOVE_RECURSE
  "CMakeFiles/test_fluid_model.dir/core/fluid_model_test.cpp.o"
  "CMakeFiles/test_fluid_model.dir/core/fluid_model_test.cpp.o.d"
  "test_fluid_model"
  "test_fluid_model.pdb"
  "test_fluid_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fluid_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
