file(REMOVE_RECURSE
  "CMakeFiles/test_freeriding_integration.dir/integration/freeriding_integration_test.cpp.o"
  "CMakeFiles/test_freeriding_integration.dir/integration/freeriding_integration_test.cpp.o.d"
  "test_freeriding_integration"
  "test_freeriding_integration.pdb"
  "test_freeriding_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_freeriding_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
