# Empty compiler generated dependencies file for test_freeriding_integration.
# This may be replaced when dependencies are built.
