# Empty dependencies file for test_freeriding.
# This may be replaced when dependencies are built.
