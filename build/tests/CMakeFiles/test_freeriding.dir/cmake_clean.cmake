file(REMOVE_RECURSE
  "CMakeFiles/test_freeriding.dir/core/freeriding_test.cpp.o"
  "CMakeFiles/test_freeriding.dir/core/freeriding_test.cpp.o.d"
  "test_freeriding"
  "test_freeriding.pdb"
  "test_freeriding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_freeriding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
