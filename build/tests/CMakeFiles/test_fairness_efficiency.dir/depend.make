# Empty dependencies file for test_fairness_efficiency.
# This may be replaced when dependencies are built.
