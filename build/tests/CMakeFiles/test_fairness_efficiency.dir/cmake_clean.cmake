file(REMOVE_RECURSE
  "CMakeFiles/test_fairness_efficiency.dir/core/fairness_efficiency_test.cpp.o"
  "CMakeFiles/test_fairness_efficiency.dir/core/fairness_efficiency_test.cpp.o.d"
  "test_fairness_efficiency"
  "test_fairness_efficiency.pdb"
  "test_fairness_efficiency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fairness_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
