file(REMOVE_RECURSE
  "CMakeFiles/test_strategic.dir/strategy/strategic_test.cpp.o"
  "CMakeFiles/test_strategic.dir/strategy/strategic_test.cpp.o.d"
  "test_strategic"
  "test_strategic.pdb"
  "test_strategic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strategic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
