# Empty dependencies file for test_strategic.
# This may be replaced when dependencies are built.
