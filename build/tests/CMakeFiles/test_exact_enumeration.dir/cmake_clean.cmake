file(REMOVE_RECURSE
  "CMakeFiles/test_exact_enumeration.dir/core/exact_enumeration_test.cpp.o"
  "CMakeFiles/test_exact_enumeration.dir/core/exact_enumeration_test.cpp.o.d"
  "test_exact_enumeration"
  "test_exact_enumeration.pdb"
  "test_exact_enumeration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
