file(REMOVE_RECURSE
  "CMakeFiles/test_propshare_strategy.dir/strategy/propshare_test.cpp.o"
  "CMakeFiles/test_propshare_strategy.dir/strategy/propshare_test.cpp.o.d"
  "test_propshare_strategy"
  "test_propshare_strategy.pdb"
  "test_propshare_strategy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_propshare_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
