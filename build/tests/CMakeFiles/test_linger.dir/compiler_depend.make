# Empty compiler generated dependencies file for test_linger.
# This may be replaced when dependencies are built.
