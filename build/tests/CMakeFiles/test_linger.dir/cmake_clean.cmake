file(REMOVE_RECURSE
  "CMakeFiles/test_linger.dir/sim/linger_test.cpp.o"
  "CMakeFiles/test_linger.dir/sim/linger_test.cpp.o.d"
  "test_linger"
  "test_linger.pdb"
  "test_linger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
