file(REMOVE_RECURSE
  "CMakeFiles/test_bittorrent_strategy.dir/strategy/bittorrent_test.cpp.o"
  "CMakeFiles/test_bittorrent_strategy.dir/strategy/bittorrent_test.cpp.o.d"
  "test_bittorrent_strategy"
  "test_bittorrent_strategy.pdb"
  "test_bittorrent_strategy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bittorrent_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
