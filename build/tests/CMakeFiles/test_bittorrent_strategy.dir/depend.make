# Empty dependencies file for test_bittorrent_strategy.
# This may be replaced when dependencies are built.
