# Empty dependencies file for test_basic_strategies.
# This may be replaced when dependencies are built.
