file(REMOVE_RECURSE
  "CMakeFiles/test_basic_strategies.dir/strategy/basic_strategies_test.cpp.o"
  "CMakeFiles/test_basic_strategies.dir/strategy/basic_strategies_test.cpp.o.d"
  "test_basic_strategies"
  "test_basic_strategies.pdb"
  "test_basic_strategies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_basic_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
