# Empty dependencies file for test_run_metrics.
# This may be replaced when dependencies are built.
