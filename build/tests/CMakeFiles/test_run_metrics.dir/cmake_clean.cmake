file(REMOVE_RECURSE
  "CMakeFiles/test_run_metrics.dir/metrics/run_metrics_test.cpp.o"
  "CMakeFiles/test_run_metrics.dir/metrics/run_metrics_test.cpp.o.d"
  "test_run_metrics"
  "test_run_metrics.pdb"
  "test_run_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_run_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
