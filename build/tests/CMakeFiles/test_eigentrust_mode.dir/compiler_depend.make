# Empty compiler generated dependencies file for test_eigentrust_mode.
# This may be replaced when dependencies are built.
