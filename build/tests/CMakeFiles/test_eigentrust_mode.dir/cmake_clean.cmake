file(REMOVE_RECURSE
  "CMakeFiles/test_eigentrust_mode.dir/strategy/eigentrust_mode_test.cpp.o"
  "CMakeFiles/test_eigentrust_mode.dir/strategy/eigentrust_mode_test.cpp.o.d"
  "test_eigentrust_mode"
  "test_eigentrust_mode.pdb"
  "test_eigentrust_mode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eigentrust_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
