# Empty dependencies file for test_reputation_model.
# This may be replaced when dependencies are built.
