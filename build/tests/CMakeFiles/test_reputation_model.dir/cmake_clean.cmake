file(REMOVE_RECURSE
  "CMakeFiles/test_reputation_model.dir/core/reputation_model_test.cpp.o"
  "CMakeFiles/test_reputation_model.dir/core/reputation_model_test.cpp.o.d"
  "test_reputation_model"
  "test_reputation_model.pdb"
  "test_reputation_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reputation_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
