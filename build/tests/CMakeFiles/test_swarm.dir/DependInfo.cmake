
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/swarm_test.cpp" "tests/CMakeFiles/test_swarm.dir/sim/swarm_test.cpp.o" "gcc" "tests/CMakeFiles/test_swarm.dir/sim/swarm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/coopnet_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/coopnet_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/strategy/CMakeFiles/coopnet_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coopnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/coopnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coopnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
