# Empty compiler generated dependencies file for test_piece_set.
# This may be replaced when dependencies are built.
