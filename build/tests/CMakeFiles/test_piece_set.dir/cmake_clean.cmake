file(REMOVE_RECURSE
  "CMakeFiles/test_piece_set.dir/sim/piece_set_test.cpp.o"
  "CMakeFiles/test_piece_set.dir/sim/piece_set_test.cpp.o.d"
  "test_piece_set"
  "test_piece_set.pdb"
  "test_piece_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_piece_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
