# Empty compiler generated dependencies file for coopnet_run.
# This may be replaced when dependencies are built.
