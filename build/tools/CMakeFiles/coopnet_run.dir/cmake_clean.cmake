file(REMOVE_RECURSE
  "CMakeFiles/coopnet_run.dir/coopnet_run.cpp.o"
  "CMakeFiles/coopnet_run.dir/coopnet_run.cpp.o.d"
  "coopnet_run"
  "coopnet_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coopnet_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
