# Empty dependencies file for ext_bittyrant.
# This may be replaced when dependencies are built.
