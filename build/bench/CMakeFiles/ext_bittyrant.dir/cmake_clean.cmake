file(REMOVE_RECURSE
  "CMakeFiles/ext_bittyrant.dir/ext_bittyrant.cpp.o"
  "CMakeFiles/ext_bittyrant.dir/ext_bittyrant.cpp.o.d"
  "ext_bittyrant"
  "ext_bittyrant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bittyrant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
