# Empty dependencies file for fig5_freeriders.
# This may be replaced when dependencies are built.
