file(REMOVE_RECURSE
  "CMakeFiles/fig5_freeriders.dir/fig5_freeriders.cpp.o"
  "CMakeFiles/fig5_freeriders.dir/fig5_freeriders.cpp.o.d"
  "fig5_freeriders"
  "fig5_freeriders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_freeriders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
