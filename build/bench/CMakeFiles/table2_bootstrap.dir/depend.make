# Empty dependencies file for table2_bootstrap.
# This may be replaced when dependencies are built.
