file(REMOVE_RECURSE
  "CMakeFiles/fig4_compliant.dir/fig4_compliant.cpp.o"
  "CMakeFiles/fig4_compliant.dir/fig4_compliant.cpp.o.d"
  "fig4_compliant"
  "fig4_compliant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_compliant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
