# Empty dependencies file for fig4_compliant.
# This may be replaced when dependencies are built.
