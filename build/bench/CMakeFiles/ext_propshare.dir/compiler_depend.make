# Empty compiler generated dependencies file for ext_propshare.
# This may be replaced when dependencies are built.
