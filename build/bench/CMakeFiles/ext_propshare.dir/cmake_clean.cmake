file(REMOVE_RECURSE
  "CMakeFiles/ext_propshare.dir/ext_propshare.cpp.o"
  "CMakeFiles/ext_propshare.dir/ext_propshare.cpp.o.d"
  "ext_propshare"
  "ext_propshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_propshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
