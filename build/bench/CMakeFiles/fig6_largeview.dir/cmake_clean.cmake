file(REMOVE_RECURSE
  "CMakeFiles/fig6_largeview.dir/fig6_largeview.cpp.o"
  "CMakeFiles/fig6_largeview.dir/fig6_largeview.cpp.o.d"
  "fig6_largeview"
  "fig6_largeview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_largeview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
