# Empty compiler generated dependencies file for fig6_largeview.
# This may be replaced when dependencies are built.
