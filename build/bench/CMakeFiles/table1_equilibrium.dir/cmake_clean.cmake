file(REMOVE_RECURSE
  "CMakeFiles/table1_equilibrium.dir/table1_equilibrium.cpp.o"
  "CMakeFiles/table1_equilibrium.dir/table1_equilibrium.cpp.o.d"
  "table1_equilibrium"
  "table1_equilibrium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_equilibrium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
