# Empty dependencies file for table1_equilibrium.
# This may be replaced when dependencies are built.
