# Empty compiler generated dependencies file for fig3_piece_availability.
# This may be replaced when dependencies are built.
