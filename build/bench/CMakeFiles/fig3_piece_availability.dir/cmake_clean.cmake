file(REMOVE_RECURSE
  "CMakeFiles/fig3_piece_availability.dir/fig3_piece_availability.cpp.o"
  "CMakeFiles/fig3_piece_availability.dir/fig3_piece_availability.cpp.o.d"
  "fig3_piece_availability"
  "fig3_piece_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_piece_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
