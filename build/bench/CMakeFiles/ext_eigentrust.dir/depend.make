# Empty dependencies file for ext_eigentrust.
# This may be replaced when dependencies are built.
