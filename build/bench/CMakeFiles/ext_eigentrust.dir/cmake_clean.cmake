file(REMOVE_RECURSE
  "CMakeFiles/ext_eigentrust.dir/ext_eigentrust.cpp.o"
  "CMakeFiles/ext_eigentrust.dir/ext_eigentrust.cpp.o.d"
  "ext_eigentrust"
  "ext_eigentrust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_eigentrust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
