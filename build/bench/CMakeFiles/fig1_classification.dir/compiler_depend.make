# Empty compiler generated dependencies file for fig1_classification.
# This may be replaced when dependencies are built.
