file(REMOVE_RECURSE
  "CMakeFiles/fig1_classification.dir/fig1_classification.cpp.o"
  "CMakeFiles/fig1_classification.dir/fig1_classification.cpp.o.d"
  "fig1_classification"
  "fig1_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
