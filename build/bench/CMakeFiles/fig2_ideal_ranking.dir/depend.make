# Empty dependencies file for fig2_ideal_ranking.
# This may be replaced when dependencies are built.
