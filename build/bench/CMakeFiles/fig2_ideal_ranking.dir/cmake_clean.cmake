file(REMOVE_RECURSE
  "CMakeFiles/fig2_ideal_ranking.dir/fig2_ideal_ranking.cpp.o"
  "CMakeFiles/fig2_ideal_ranking.dir/fig2_ideal_ranking.cpp.o.d"
  "fig2_ideal_ranking"
  "fig2_ideal_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ideal_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
