# Empty compiler generated dependencies file for table3_freeriding.
# This may be replaced when dependencies are built.
