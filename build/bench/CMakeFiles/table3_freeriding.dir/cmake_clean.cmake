file(REMOVE_RECURSE
  "CMakeFiles/table3_freeriding.dir/table3_freeriding.cpp.o"
  "CMakeFiles/table3_freeriding.dir/table3_freeriding.cpp.o.d"
  "table3_freeriding"
  "table3_freeriding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_freeriding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
