
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/coopnet_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/coopnet_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/coopnet_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/coopnet_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/neighbor_graph.cpp" "src/sim/CMakeFiles/coopnet_sim.dir/neighbor_graph.cpp.o" "gcc" "src/sim/CMakeFiles/coopnet_sim.dir/neighbor_graph.cpp.o.d"
  "/root/repo/src/sim/peer.cpp" "src/sim/CMakeFiles/coopnet_sim.dir/peer.cpp.o" "gcc" "src/sim/CMakeFiles/coopnet_sim.dir/peer.cpp.o.d"
  "/root/repo/src/sim/piece_set.cpp" "src/sim/CMakeFiles/coopnet_sim.dir/piece_set.cpp.o" "gcc" "src/sim/CMakeFiles/coopnet_sim.dir/piece_set.cpp.o.d"
  "/root/repo/src/sim/swarm.cpp" "src/sim/CMakeFiles/coopnet_sim.dir/swarm.cpp.o" "gcc" "src/sim/CMakeFiles/coopnet_sim.dir/swarm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/coopnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coopnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
