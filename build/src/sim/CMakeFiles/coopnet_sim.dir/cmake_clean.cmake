file(REMOVE_RECURSE
  "CMakeFiles/coopnet_sim.dir/config.cpp.o"
  "CMakeFiles/coopnet_sim.dir/config.cpp.o.d"
  "CMakeFiles/coopnet_sim.dir/engine.cpp.o"
  "CMakeFiles/coopnet_sim.dir/engine.cpp.o.d"
  "CMakeFiles/coopnet_sim.dir/neighbor_graph.cpp.o"
  "CMakeFiles/coopnet_sim.dir/neighbor_graph.cpp.o.d"
  "CMakeFiles/coopnet_sim.dir/peer.cpp.o"
  "CMakeFiles/coopnet_sim.dir/peer.cpp.o.d"
  "CMakeFiles/coopnet_sim.dir/piece_set.cpp.o"
  "CMakeFiles/coopnet_sim.dir/piece_set.cpp.o.d"
  "CMakeFiles/coopnet_sim.dir/swarm.cpp.o"
  "CMakeFiles/coopnet_sim.dir/swarm.cpp.o.d"
  "libcoopnet_sim.a"
  "libcoopnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coopnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
