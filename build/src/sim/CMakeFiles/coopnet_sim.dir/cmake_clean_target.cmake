file(REMOVE_RECURSE
  "libcoopnet_sim.a"
)
