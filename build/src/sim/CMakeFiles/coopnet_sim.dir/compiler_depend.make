# Empty compiler generated dependencies file for coopnet_sim.
# This may be replaced when dependencies are built.
