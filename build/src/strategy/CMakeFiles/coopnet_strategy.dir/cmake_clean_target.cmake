file(REMOVE_RECURSE
  "libcoopnet_strategy.a"
)
