file(REMOVE_RECURSE
  "CMakeFiles/coopnet_strategy.dir/altruism.cpp.o"
  "CMakeFiles/coopnet_strategy.dir/altruism.cpp.o.d"
  "CMakeFiles/coopnet_strategy.dir/bittorrent.cpp.o"
  "CMakeFiles/coopnet_strategy.dir/bittorrent.cpp.o.d"
  "CMakeFiles/coopnet_strategy.dir/factory.cpp.o"
  "CMakeFiles/coopnet_strategy.dir/factory.cpp.o.d"
  "CMakeFiles/coopnet_strategy.dir/fairtorrent.cpp.o"
  "CMakeFiles/coopnet_strategy.dir/fairtorrent.cpp.o.d"
  "CMakeFiles/coopnet_strategy.dir/propshare.cpp.o"
  "CMakeFiles/coopnet_strategy.dir/propshare.cpp.o.d"
  "CMakeFiles/coopnet_strategy.dir/reciprocity.cpp.o"
  "CMakeFiles/coopnet_strategy.dir/reciprocity.cpp.o.d"
  "CMakeFiles/coopnet_strategy.dir/reputation.cpp.o"
  "CMakeFiles/coopnet_strategy.dir/reputation.cpp.o.d"
  "CMakeFiles/coopnet_strategy.dir/tchain.cpp.o"
  "CMakeFiles/coopnet_strategy.dir/tchain.cpp.o.d"
  "libcoopnet_strategy.a"
  "libcoopnet_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coopnet_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
