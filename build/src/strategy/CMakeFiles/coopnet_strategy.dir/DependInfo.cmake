
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strategy/altruism.cpp" "src/strategy/CMakeFiles/coopnet_strategy.dir/altruism.cpp.o" "gcc" "src/strategy/CMakeFiles/coopnet_strategy.dir/altruism.cpp.o.d"
  "/root/repo/src/strategy/bittorrent.cpp" "src/strategy/CMakeFiles/coopnet_strategy.dir/bittorrent.cpp.o" "gcc" "src/strategy/CMakeFiles/coopnet_strategy.dir/bittorrent.cpp.o.d"
  "/root/repo/src/strategy/factory.cpp" "src/strategy/CMakeFiles/coopnet_strategy.dir/factory.cpp.o" "gcc" "src/strategy/CMakeFiles/coopnet_strategy.dir/factory.cpp.o.d"
  "/root/repo/src/strategy/fairtorrent.cpp" "src/strategy/CMakeFiles/coopnet_strategy.dir/fairtorrent.cpp.o" "gcc" "src/strategy/CMakeFiles/coopnet_strategy.dir/fairtorrent.cpp.o.d"
  "/root/repo/src/strategy/propshare.cpp" "src/strategy/CMakeFiles/coopnet_strategy.dir/propshare.cpp.o" "gcc" "src/strategy/CMakeFiles/coopnet_strategy.dir/propshare.cpp.o.d"
  "/root/repo/src/strategy/reciprocity.cpp" "src/strategy/CMakeFiles/coopnet_strategy.dir/reciprocity.cpp.o" "gcc" "src/strategy/CMakeFiles/coopnet_strategy.dir/reciprocity.cpp.o.d"
  "/root/repo/src/strategy/reputation.cpp" "src/strategy/CMakeFiles/coopnet_strategy.dir/reputation.cpp.o" "gcc" "src/strategy/CMakeFiles/coopnet_strategy.dir/reputation.cpp.o.d"
  "/root/repo/src/strategy/tchain.cpp" "src/strategy/CMakeFiles/coopnet_strategy.dir/tchain.cpp.o" "gcc" "src/strategy/CMakeFiles/coopnet_strategy.dir/tchain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/coopnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/coopnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coopnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
