# Empty compiler generated dependencies file for coopnet_strategy.
# This may be replaced when dependencies are built.
