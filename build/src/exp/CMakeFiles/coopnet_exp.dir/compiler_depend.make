# Empty compiler generated dependencies file for coopnet_exp.
# This may be replaced when dependencies are built.
