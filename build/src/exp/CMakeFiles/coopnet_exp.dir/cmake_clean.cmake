file(REMOVE_RECURSE
  "CMakeFiles/coopnet_exp.dir/replication.cpp.o"
  "CMakeFiles/coopnet_exp.dir/replication.cpp.o.d"
  "CMakeFiles/coopnet_exp.dir/runner.cpp.o"
  "CMakeFiles/coopnet_exp.dir/runner.cpp.o.d"
  "libcoopnet_exp.a"
  "libcoopnet_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coopnet_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
