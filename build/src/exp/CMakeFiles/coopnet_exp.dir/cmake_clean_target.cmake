file(REMOVE_RECURSE
  "libcoopnet_exp.a"
)
