file(REMOVE_RECURSE
  "CMakeFiles/coopnet_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/coopnet_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/coopnet_util.dir/cli.cpp.o"
  "CMakeFiles/coopnet_util.dir/cli.cpp.o.d"
  "CMakeFiles/coopnet_util.dir/histogram.cpp.o"
  "CMakeFiles/coopnet_util.dir/histogram.cpp.o.d"
  "CMakeFiles/coopnet_util.dir/logmath.cpp.o"
  "CMakeFiles/coopnet_util.dir/logmath.cpp.o.d"
  "CMakeFiles/coopnet_util.dir/rng.cpp.o"
  "CMakeFiles/coopnet_util.dir/rng.cpp.o.d"
  "CMakeFiles/coopnet_util.dir/stats.cpp.o"
  "CMakeFiles/coopnet_util.dir/stats.cpp.o.d"
  "CMakeFiles/coopnet_util.dir/table.cpp.o"
  "CMakeFiles/coopnet_util.dir/table.cpp.o.d"
  "CMakeFiles/coopnet_util.dir/timeseries.cpp.o"
  "CMakeFiles/coopnet_util.dir/timeseries.cpp.o.d"
  "libcoopnet_util.a"
  "libcoopnet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coopnet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
