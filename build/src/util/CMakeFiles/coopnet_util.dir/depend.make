# Empty dependencies file for coopnet_util.
# This may be replaced when dependencies are built.
