file(REMOVE_RECURSE
  "libcoopnet_util.a"
)
