# Empty dependencies file for coopnet_core.
# This may be replaced when dependencies are built.
