
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithm.cpp" "src/core/CMakeFiles/coopnet_core.dir/algorithm.cpp.o" "gcc" "src/core/CMakeFiles/coopnet_core.dir/algorithm.cpp.o.d"
  "/root/repo/src/core/bootstrap.cpp" "src/core/CMakeFiles/coopnet_core.dir/bootstrap.cpp.o" "gcc" "src/core/CMakeFiles/coopnet_core.dir/bootstrap.cpp.o.d"
  "/root/repo/src/core/capacity.cpp" "src/core/CMakeFiles/coopnet_core.dir/capacity.cpp.o" "gcc" "src/core/CMakeFiles/coopnet_core.dir/capacity.cpp.o.d"
  "/root/repo/src/core/eigentrust.cpp" "src/core/CMakeFiles/coopnet_core.dir/eigentrust.cpp.o" "gcc" "src/core/CMakeFiles/coopnet_core.dir/eigentrust.cpp.o.d"
  "/root/repo/src/core/equilibrium.cpp" "src/core/CMakeFiles/coopnet_core.dir/equilibrium.cpp.o" "gcc" "src/core/CMakeFiles/coopnet_core.dir/equilibrium.cpp.o.d"
  "/root/repo/src/core/fairness_efficiency.cpp" "src/core/CMakeFiles/coopnet_core.dir/fairness_efficiency.cpp.o" "gcc" "src/core/CMakeFiles/coopnet_core.dir/fairness_efficiency.cpp.o.d"
  "/root/repo/src/core/fluid_model.cpp" "src/core/CMakeFiles/coopnet_core.dir/fluid_model.cpp.o" "gcc" "src/core/CMakeFiles/coopnet_core.dir/fluid_model.cpp.o.d"
  "/root/repo/src/core/freeriding.cpp" "src/core/CMakeFiles/coopnet_core.dir/freeriding.cpp.o" "gcc" "src/core/CMakeFiles/coopnet_core.dir/freeriding.cpp.o.d"
  "/root/repo/src/core/piece_availability.cpp" "src/core/CMakeFiles/coopnet_core.dir/piece_availability.cpp.o" "gcc" "src/core/CMakeFiles/coopnet_core.dir/piece_availability.cpp.o.d"
  "/root/repo/src/core/reputation_model.cpp" "src/core/CMakeFiles/coopnet_core.dir/reputation_model.cpp.o" "gcc" "src/core/CMakeFiles/coopnet_core.dir/reputation_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coopnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
