file(REMOVE_RECURSE
  "libcoopnet_core.a"
)
