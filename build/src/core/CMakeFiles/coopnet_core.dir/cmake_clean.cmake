file(REMOVE_RECURSE
  "CMakeFiles/coopnet_core.dir/algorithm.cpp.o"
  "CMakeFiles/coopnet_core.dir/algorithm.cpp.o.d"
  "CMakeFiles/coopnet_core.dir/bootstrap.cpp.o"
  "CMakeFiles/coopnet_core.dir/bootstrap.cpp.o.d"
  "CMakeFiles/coopnet_core.dir/capacity.cpp.o"
  "CMakeFiles/coopnet_core.dir/capacity.cpp.o.d"
  "CMakeFiles/coopnet_core.dir/eigentrust.cpp.o"
  "CMakeFiles/coopnet_core.dir/eigentrust.cpp.o.d"
  "CMakeFiles/coopnet_core.dir/equilibrium.cpp.o"
  "CMakeFiles/coopnet_core.dir/equilibrium.cpp.o.d"
  "CMakeFiles/coopnet_core.dir/fairness_efficiency.cpp.o"
  "CMakeFiles/coopnet_core.dir/fairness_efficiency.cpp.o.d"
  "CMakeFiles/coopnet_core.dir/fluid_model.cpp.o"
  "CMakeFiles/coopnet_core.dir/fluid_model.cpp.o.d"
  "CMakeFiles/coopnet_core.dir/freeriding.cpp.o"
  "CMakeFiles/coopnet_core.dir/freeriding.cpp.o.d"
  "CMakeFiles/coopnet_core.dir/piece_availability.cpp.o"
  "CMakeFiles/coopnet_core.dir/piece_availability.cpp.o.d"
  "CMakeFiles/coopnet_core.dir/reputation_model.cpp.o"
  "CMakeFiles/coopnet_core.dir/reputation_model.cpp.o.d"
  "libcoopnet_core.a"
  "libcoopnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coopnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
