file(REMOVE_RECURSE
  "libcoopnet_metrics.a"
)
