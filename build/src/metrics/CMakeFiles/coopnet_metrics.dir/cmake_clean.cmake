file(REMOVE_RECURSE
  "CMakeFiles/coopnet_metrics.dir/availability.cpp.o"
  "CMakeFiles/coopnet_metrics.dir/availability.cpp.o.d"
  "CMakeFiles/coopnet_metrics.dir/json.cpp.o"
  "CMakeFiles/coopnet_metrics.dir/json.cpp.o.d"
  "CMakeFiles/coopnet_metrics.dir/report.cpp.o"
  "CMakeFiles/coopnet_metrics.dir/report.cpp.o.d"
  "CMakeFiles/coopnet_metrics.dir/run_metrics.cpp.o"
  "CMakeFiles/coopnet_metrics.dir/run_metrics.cpp.o.d"
  "CMakeFiles/coopnet_metrics.dir/trace_log.cpp.o"
  "CMakeFiles/coopnet_metrics.dir/trace_log.cpp.o.d"
  "libcoopnet_metrics.a"
  "libcoopnet_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coopnet_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
