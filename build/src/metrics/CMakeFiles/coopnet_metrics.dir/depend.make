# Empty dependencies file for coopnet_metrics.
# This may be replaced when dependencies are built.
