
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/availability.cpp" "src/metrics/CMakeFiles/coopnet_metrics.dir/availability.cpp.o" "gcc" "src/metrics/CMakeFiles/coopnet_metrics.dir/availability.cpp.o.d"
  "/root/repo/src/metrics/json.cpp" "src/metrics/CMakeFiles/coopnet_metrics.dir/json.cpp.o" "gcc" "src/metrics/CMakeFiles/coopnet_metrics.dir/json.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/metrics/CMakeFiles/coopnet_metrics.dir/report.cpp.o" "gcc" "src/metrics/CMakeFiles/coopnet_metrics.dir/report.cpp.o.d"
  "/root/repo/src/metrics/run_metrics.cpp" "src/metrics/CMakeFiles/coopnet_metrics.dir/run_metrics.cpp.o" "gcc" "src/metrics/CMakeFiles/coopnet_metrics.dir/run_metrics.cpp.o.d"
  "/root/repo/src/metrics/trace_log.cpp" "src/metrics/CMakeFiles/coopnet_metrics.dir/trace_log.cpp.o" "gcc" "src/metrics/CMakeFiles/coopnet_metrics.dir/trace_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/coopnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coopnet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/coopnet_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
