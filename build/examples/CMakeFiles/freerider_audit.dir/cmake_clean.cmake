file(REMOVE_RECURSE
  "CMakeFiles/freerider_audit.dir/freerider_audit.cpp.o"
  "CMakeFiles/freerider_audit.dir/freerider_audit.cpp.o.d"
  "freerider_audit"
  "freerider_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freerider_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
