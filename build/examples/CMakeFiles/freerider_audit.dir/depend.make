# Empty dependencies file for freerider_audit.
# This may be replaced when dependencies are built.
