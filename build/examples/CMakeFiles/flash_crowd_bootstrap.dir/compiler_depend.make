# Empty compiler generated dependencies file for flash_crowd_bootstrap.
# This may be replaced when dependencies are built.
