file(REMOVE_RECURSE
  "CMakeFiles/flash_crowd_bootstrap.dir/flash_crowd_bootstrap.cpp.o"
  "CMakeFiles/flash_crowd_bootstrap.dir/flash_crowd_bootstrap.cpp.o.d"
  "flash_crowd_bootstrap"
  "flash_crowd_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_crowd_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
