# Empty dependencies file for iot_update_dissemination.
# This may be replaced when dependencies are built.
