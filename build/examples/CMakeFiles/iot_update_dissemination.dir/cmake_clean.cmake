file(REMOVE_RECURSE
  "CMakeFiles/iot_update_dissemination.dir/iot_update_dissemination.cpp.o"
  "CMakeFiles/iot_update_dissemination.dir/iot_update_dissemination.cpp.o.d"
  "iot_update_dissemination"
  "iot_update_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_update_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
